// k-nearest-neighbor regression with optional per-dimension z-normalization.
//
// Used twice in the paper: (a) predicting spoiler-model coefficients of a new
// template from its (working-set size, I/O fraction) neighbors (§5.5), and
// (b) averaging the latencies of the nearest projected training examples in
// the KCCA baseline (§3).

#ifndef CONTENDER_ML_KNN_H_
#define CONTENDER_ML_KNN_H_

#include <vector>

#include "math/matrix.h"
#include "util/statusor.h"

namespace contender {

/// Multi-output KNN regressor over dense feature vectors.
class KnnRegressor {
 public:
  struct Options {
    int k = 3;
    /// Z-score each feature dimension using training statistics so that
    /// differently-scaled features (bytes vs fractions) weigh equally.
    bool normalize = true;
  };

  /// Fits the regressor. `features[i]` and `targets[i]` describe example i;
  /// all feature rows must share one dimensionality, targets likewise.
  static StatusOr<KnnRegressor> Fit(std::vector<Vector> features,
                                    std::vector<Vector> targets,
                                    const Options& options);

  /// Averages the targets of the k nearest training examples.
  Vector Predict(const Vector& query) const;

  /// Indices of the k nearest training examples, nearest first.
  std::vector<size_t> Neighbors(const Vector& query) const;

  size_t size() const { return features_.size(); }

 private:
  KnnRegressor() = default;

  Vector Normalize(const Vector& v) const;

  Options options_;
  std::vector<Vector> features_;  // normalized when options_.normalize
  std::vector<Vector> targets_;
  Vector mean_;
  Vector stddev_;
};

}  // namespace contender

#endif  // CONTENDER_ML_KNN_H_

// ε-insensitive Support Vector Regression with an RBF kernel, trained by a
// two-variable SMO-style dual coordinate ascent (Smola & Schölkopf).
//
// This is the "SVM" baseline of paper §3: query-plan feature vectors in,
// latency labels out.

#ifndef CONTENDER_ML_SVM_H_
#define CONTENDER_ML_SVM_H_

#include <vector>

#include "math/matrix.h"
#include "util/random.h"
#include "util/statusor.h"

namespace contender {

/// RBF-kernel ε-SVR.
class SvrModel {
 public:
  struct Options {
    /// Box constraint on the dual variables β_i = α_i − α*_i ∈ [−C, C].
    double c = 10.0;
    /// Half-width of the ε-insensitive tube, in label units (labels are
    /// z-scored internally, so this is in standard deviations).
    double epsilon = 0.05;
    /// RBF width; <= 0 selects the median heuristic.
    double gamma = -1.0;
    /// Z-score features using training statistics.
    bool normalize = true;
    int max_epochs = 200;
    /// Stop when an epoch's best objective improvement is below this.
    double tolerance = 1e-6;
    uint64_t seed = 1;
  };

  /// Trains on `features` (one row per example) and `labels`.
  static StatusOr<SvrModel> Fit(const std::vector<Vector>& features,
                                const std::vector<double>& labels,
                                const Options& options);

  /// Predicted label for `query`.
  double Predict(const Vector& query) const;

  /// Number of support vectors (β_i != 0).
  size_t num_support_vectors() const { return support_.size(); }

 private:
  SvrModel() = default;

  Vector Normalize(const Vector& v) const;

  Options options_;
  double gamma_ = 1.0;
  double bias_ = 0.0;
  double label_mean_ = 0.0;
  double label_scale_ = 1.0;
  Vector feature_mean_;
  Vector feature_scale_;
  std::vector<Vector> support_;     // normalized support vectors
  std::vector<double> support_beta_;
};

}  // namespace contender

#endif  // CONTENDER_ML_SVM_H_

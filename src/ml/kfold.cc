#include "ml/kfold.h"

#include <algorithm>

namespace contender {

std::vector<FoldSplit> KFoldSplits(size_t n, int k, Rng* rng) {
  if (n == 0) return {};
  const size_t folds =
      std::min<size_t>(std::max(k, 1), n);
  std::vector<int> perm = rng->Permutation(static_cast<int>(n));

  std::vector<std::vector<size_t>> fold_members(folds);
  for (size_t i = 0; i < n; ++i) {
    fold_members[i % folds].push_back(static_cast<size_t>(perm[i]));
  }

  std::vector<FoldSplit> splits(folds);
  for (size_t f = 0; f < folds; ++f) {
    splits[f].test = fold_members[f];
    for (size_t g = 0; g < folds; ++g) {
      if (g == f) continue;
      splits[f].train.insert(splits[f].train.end(), fold_members[g].begin(),
                             fold_members[g].end());
    }
    std::sort(splits[f].train.begin(), splits[f].train.end());
    std::sort(splits[f].test.begin(), splits[f].test.end());
  }
  return splits;
}

std::vector<FoldSplit> LeaveOneOutSplits(size_t n) {
  std::vector<FoldSplit> splits(n);
  for (size_t i = 0; i < n; ++i) {
    splits[i].test = {i};
    for (size_t j = 0; j < n; ++j) {
      if (j != i) splits[i].train.push_back(j);
    }
  }
  return splits;
}

}  // namespace contender

#include "core/qs_model.h"

#include "core/continuum.h"
#include "math/regression.h"

namespace contender {

StatusOr<QsModel> FitQsModel(
    const std::vector<units::Cqi>& cqi_values,
    const std::vector<units::ContinuumPoint>& continuum_points) {
  std::vector<double> x, y;
  x.reserve(cqi_values.size());
  y.reserve(continuum_points.size());
  for (units::Cqi c : cqi_values) x.push_back(c.value());
  for (units::ContinuumPoint p : continuum_points) y.push_back(p.value());
  auto fit = FitSimpleLinear(x, y);
  if (!fit.ok()) return fit.status();
  QsModel model;
  model.slope = fit->slope;
  model.intercept = fit->intercept;
  model.r_squared = fit->r_squared;
  return model;
}

StatusOr<QsTrainingSet> BuildQsTrainingSet(
    const std::vector<TemplateProfile>& profiles,
    const ScanTimes& scan_times,
    const std::vector<MixObservation>& observations, int primary_index,
    units::Mpl mpl, CqiVariant variant) {
  if (primary_index < 0 ||
      static_cast<size_t>(primary_index) >= profiles.size()) {
    return Status::InvalidArgument("BuildQsTrainingSet: bad primary index");
  }
  const TemplateProfile& primary =
      profiles[static_cast<size_t>(primary_index)];
  auto lmax_it = primary.spoiler_latency.find(mpl.value());
  if (lmax_it == primary.spoiler_latency.end()) {
    return Status::FailedPrecondition(
        "BuildQsTrainingSet: no spoiler latency at requested MPL");
  }
  CONTENDER_ASSIGN_OR_RETURN(
      const units::LatencyRange range,
      units::LatencyRange::Make(primary.isolated_latency, lmax_it->second));

  QsTrainingSet set;
  for (const MixObservation& obs : observations) {
    if (obs.primary_index != primary_index || obs.mpl != mpl.value()) continue;
    if (ExceedsContinuum(obs.latency, range.max())) {
      ++set.dropped_outliers;
      continue;
    }
    auto cqi = ComputeCqi(profiles, scan_times, primary_index,
                          obs.concurrent_indices, variant);
    if (!cqi.ok()) return cqi.status();
    auto point = ContinuumPoint(obs.latency, range);
    if (!point.ok()) return point.status();
    set.cqi.push_back(*cqi);
    set.continuum.push_back(*point);
    set.latency.push_back(obs.latency);
  }
  return set;
}

StatusOr<std::map<int, QsModel>> FitReferenceModels(
    const std::vector<TemplateProfile>& profiles,
    const ScanTimes& scan_times,
    const std::vector<MixObservation>& observations, units::Mpl mpl,
    CqiVariant variant) {
  std::map<int, QsModel> models;
  for (size_t t = 0; t < profiles.size(); ++t) {
    auto set = BuildQsTrainingSet(profiles, scan_times, observations,
                                  static_cast<int>(t), mpl, variant);
    if (!set.ok()) continue;
    if (set->cqi.size() < 3) continue;
    auto model = FitQsModel(set->cqi, set->continuum);
    if (!model.ok()) continue;
    models[static_cast<int>(t)] = *model;
  }
  return models;
}

}  // namespace contender

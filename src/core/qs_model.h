// Query Sensitivity models (paper §5.2, Eq. 7): per-template linear models
// mapping a mix's CQI to the template's continuum point,
//   c_{t,m} = µ_t · r_{t,m} + b_t.

#ifndef CONTENDER_CORE_QS_MODEL_H_
#define CONTENDER_CORE_QS_MODEL_H_

#include <map>
#include <vector>

#include "core/cqi.h"
#include "core/template_profile.h"
#include "util/statusor.h"
#include "util/units.h"

namespace contender {

/// One template's QS model.
struct QsModel {
  double slope = 0.0;      ///< µ_t: sensitivity to I/O contention
  double intercept = 0.0;  ///< b_t: fixed cost of concurrency
  double r_squared = 0.0;  ///< fit quality on the training pairs

  [[nodiscard]] units::ContinuumPoint PredictContinuum(units::Cqi cqi) const {
    return units::ContinuumPoint(slope * cqi.value() + intercept);
  }
};

/// Fits a QS model from (CQI, continuum point) training pairs.
/// Requires >= 2 pairs with non-constant CQI.
StatusOr<QsModel> FitQsModel(
    const std::vector<units::Cqi>& cqi_values,
    const std::vector<units::ContinuumPoint>& continuum_points);

/// Builds the (CQI, continuum) training pairs for one primary template from
/// steady-state observations at one MPL, using measured l_min / l_max from
/// the profiles. Observations beyond 105% of l_max are dropped (§6.1).
struct QsTrainingSet {
  std::vector<units::Cqi> cqi;
  std::vector<units::ContinuumPoint> continuum;
  /// Observed latencies aligned with the pairs (for error evaluation).
  std::vector<units::Seconds> latency;
  int dropped_outliers = 0;
};

StatusOr<QsTrainingSet> BuildQsTrainingSet(
    const std::vector<TemplateProfile>& profiles,
    const ScanTimes& scan_times,
    const std::vector<MixObservation>& observations, int primary_index,
    units::Mpl mpl, CqiVariant variant = CqiVariant::kFull);

/// Fits one QS reference model per template at the given MPL. Templates
/// with too few observations are skipped. The result maps template index to
/// its model.
StatusOr<std::map<int, QsModel>> FitReferenceModels(
    const std::vector<TemplateProfile>& profiles,
    const ScanTimes& scan_times,
    const std::vector<MixObservation>& observations, units::Mpl mpl,
    CqiVariant variant = CqiVariant::kFull);

}  // namespace contender

#endif  // CONTENDER_CORE_QS_MODEL_H_

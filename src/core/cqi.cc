#include "core/cqi.h"

#include <algorithm>

namespace contender {

namespace {

Status ValidateIndices(const std::vector<TemplateProfile>& profiles,
                       int primary_index,
                       const std::vector<int>& concurrent_indices) {
  const int n = static_cast<int>(profiles.size());
  if (primary_index < 0 || primary_index >= n) {
    return Status::InvalidArgument("CQI: bad primary index");
  }
  if (concurrent_indices.empty()) {
    return Status::InvalidArgument("CQI: empty concurrent set");
  }
  for (int c : concurrent_indices) {
    if (c < 0 || c >= n) {
      return Status::InvalidArgument("CQI: bad concurrent index");
    }
  }
  return Status::OK();
}

units::Seconds ScanTime(const ScanTimes& scan_times, sim::TableId f) {
  auto it = scan_times.find(f);
  return it == scan_times.end() ? units::Seconds() : it->second;
}

/// h_f: number of concurrent (non-primary) queries scanning fact table f.
int CountScanners(const std::vector<const TemplateProfile*>& concurrent,
                  sim::TableId f) {
  int h = 0;
  for (const TemplateProfile* c : concurrent) {
    if (c->ScansFactTable(f)) ++h;
  }
  return h;
}

/// Eq. 2–4 for the concurrent query at `position`.
StatusOr<CqiTerms> TermsFor(
    const TemplateProfile& primary,
    const std::vector<const TemplateProfile*>& concurrent, size_t position,
    const ScanTimes& scan_times, CqiVariant variant) {
  const TemplateProfile& c = *concurrent[position];

  CqiTerms terms;
  terms.total_io_seconds = c.isolated_latency * c.io_fraction;

  if (variant != CqiVariant::kBaselineIo) {
    // ω_c (Eq. 2): scans shared with the primary.
    for (sim::TableId f : c.fact_tables) {
      if (primary.ScansFactTable(f)) {
        terms.omega += ScanTime(scan_times, f);
      }
    }
  }
  if (variant == CqiVariant::kFull) {
    // τ_c (Eq. 3): scans shared among the non-primary queries only.
    for (sim::TableId f : c.fact_tables) {
      if (primary.ScansFactTable(f)) continue;  // avoid double counting
      const int h = CountScanners(concurrent, f);
      if (h > 1) {
        terms.tau +=
            (1.0 - 1.0 / static_cast<double>(h)) * ScanTime(scan_times, f);
      }
    }
  }

  if (c.isolated_latency.value() <= 0.0) {
    return Status::FailedPrecondition("CQI: non-positive isolated latency");
  }
  // Eq. 4, truncated at zero.
  terms.r =
      std::max(0.0, (terms.total_io_seconds - terms.omega - terms.tau) /
                        c.isolated_latency);  // Seconds / Seconds -> ratio
  return terms;
}

}  // namespace

StatusOr<CqiTerms> ComputeCqiTerms(
    const std::vector<TemplateProfile>& profiles,
    const ScanTimes& scan_times, int primary_index,
    const std::vector<int>& concurrent_indices, size_t concurrent_position,
    CqiVariant variant) {
  CONTENDER_RETURN_IF_ERROR(
      ValidateIndices(profiles, primary_index, concurrent_indices));
  if (concurrent_position >= concurrent_indices.size()) {
    return Status::InvalidArgument("CQI: bad concurrent position");
  }
  std::vector<const TemplateProfile*> concurrent;
  for (int c : concurrent_indices) {
    concurrent.push_back(&profiles[static_cast<size_t>(c)]);
  }
  return TermsFor(profiles[static_cast<size_t>(primary_index)], concurrent,
                  concurrent_position, scan_times, variant);
}

StatusOr<units::Cqi> ComputeCqiFor(
    const TemplateProfile& primary,
    const std::vector<const TemplateProfile*>& concurrent,
    const ScanTimes& scan_times, CqiVariant variant) {
  if (concurrent.empty()) {
    return Status::InvalidArgument("CQI: empty concurrent set");
  }
  double sum = 0.0;
  for (size_t i = 0; i < concurrent.size(); ++i) {
    auto terms = TermsFor(primary, concurrent, i, scan_times, variant);
    if (!terms.ok()) return terms.status();
    sum += terms->r;
  }
  // Eq. 5: average competing fraction across the concurrent queries.
  return units::Cqi(sum / static_cast<double>(concurrent.size()));
}

StatusOr<units::Cqi> ComputeCqi(const std::vector<TemplateProfile>& profiles,
                                const ScanTimes& scan_times,
                                int primary_index,
                                const std::vector<int>& concurrent_indices,
                                CqiVariant variant) {
  CONTENDER_RETURN_IF_ERROR(
      ValidateIndices(profiles, primary_index, concurrent_indices));
  std::vector<const TemplateProfile*> concurrent;
  for (int c : concurrent_indices) {
    concurrent.push_back(&profiles[static_cast<size_t>(c)]);
  }
  return ComputeCqiFor(profiles[static_cast<size_t>(primary_index)],
                       concurrent, scan_times, variant);
}

}  // namespace contender

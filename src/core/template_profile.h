// Data types exchanged between the workload sampler and the Contender
// models: per-template isolated statistics and steady-state mix
// observations. Header-only so lower layers can produce them.
//
// All time, volume and ratio quantities are carried as util/units.h strong
// types; feeding a latency where a fraction belongs no longer compiles.

#ifndef CONTENDER_CORE_TEMPLATE_PROFILE_H_
#define CONTENDER_CORE_TEMPLATE_PROFILE_H_

#include <map>
#include <vector>

#include "sim/query_spec.h"
#include "util/units.h"

namespace contender {

/// Isolated full-scan time per fact table (the paper's s_f), keyed by
/// table id.
using ScanTimes = std::map<sim::TableId, units::Seconds>;

/// Isolated (cold-cache) execution statistics of one template, plus its
/// measured spoiler latencies. Everything Contender knows about a template
/// comes from this profile and the plan's semantic information.
struct TemplateProfile {
  /// Position in the workload.
  int template_index = -1;
  /// Paper template number.
  int template_id = 0;

  /// l_min: latency in isolation with a cold cache (continuum lower bound).
  units::Seconds isolated_latency;
  /// p_t: fraction of isolated execution time spent on I/O.
  units::Fraction io_fraction;
  /// Largest intermediate-result memory demand.
  units::Bytes working_set_bytes;
  /// Sum of optimizer cardinalities over the plan ("records accessed").
  double records_accessed = 0.0;
  /// Operator count of the plan.
  int plan_steps = 0;
  /// Fact tables sequentially scanned by the plan (sorted, deduplicated).
  std::vector<sim::TableId> fact_tables;

  /// l_max per MPL: measured latency against the spoiler.
  std::map<int, units::Seconds> spoiler_latency;

  /// I/O seconds in isolation (l_min * p_t).
  [[nodiscard]] units::Seconds io_seconds() const {
    return isolated_latency * io_fraction;
  }

  [[nodiscard]] bool ScansFactTable(sim::TableId t) const {
    for (sim::TableId f : fact_tables) {
      if (f == t) return true;
    }
    return false;
  }
};

/// One steady-state observation: the primary template's mean latency when
/// executing inside a concurrent mix.
struct MixObservation {
  /// Workload index of the primary template.
  int primary_index = -1;
  /// Workload indices of the queries running concurrently with the primary
  /// (the other mix slots; size = MPL - 1).
  std::vector<int> concurrent_indices;
  /// Multiprogramming level of the mix (concurrent_indices.size() + 1).
  int mpl = 0;
  /// Observed steady-state mean latency of the primary.
  units::Seconds latency;
};

}  // namespace contender

#endif  // CONTENDER_CORE_TEMPLATE_PROFILE_H_

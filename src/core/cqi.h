// Concurrent Query Intensity (paper §4.1, Eqs. 2–5): for a primary template
// in a mix, the average fraction of each concurrent query's isolated I/O
// time that directly competes with the primary for the I/O bus, after
// crediting positive interactions (shared fact-table scans with the primary
// and among the concurrent queries themselves).

#ifndef CONTENDER_CORE_CQI_H_
#define CONTENDER_CORE_CQI_H_

#include <vector>

#include "core/template_profile.h"
#include "util/statusor.h"
#include "util/units.h"

namespace contender {

/// The metric variants compared in Table 2.
enum class CqiVariant {
  /// Average of the concurrent queries' isolated I/O fractions p_c.
  kBaselineIo,
  /// Baseline minus shared scans with the primary (ω only).
  kPositiveIo,
  /// Full CQI: also credits shared scans among non-primaries (ω and τ).
  kFull,
};

/// Computes r_{t,m} for `primary` against `concurrent` (both are workload
/// indices into `profiles`; repeats allowed). `scan_times` maps fact-table
/// id to its isolated scan time s_f. Negative per-query I/O estimates are
/// truncated to zero (paper §4.1).
StatusOr<units::Cqi> ComputeCqi(const std::vector<TemplateProfile>& profiles,
                                const ScanTimes& scan_times,
                                int primary_index,
                                const std::vector<int>& concurrent_indices,
                                CqiVariant variant);

/// Profile-based overload: the primary need not belong to `profiles`
/// (used when predicting for a new, unseen template).
StatusOr<units::Cqi> ComputeCqiFor(
    const TemplateProfile& primary,
    const std::vector<const TemplateProfile*>& concurrent,
    const ScanTimes& scan_times, CqiVariant variant);

/// Per-concurrent-query breakdown (exposed for tests and diagnostics).
struct CqiTerms {
  units::Seconds total_io_seconds;  ///< l_min(c) * p_c
  units::Seconds omega;  ///< shared-with-primary scan seconds (Eq. 2)
  units::Seconds tau;    ///< shared-among-concurrent credit (Eq. 3)
  double r = 0.0;        ///< Eq. 4, truncated at zero (a ratio)
};

/// Terms for one concurrent query c in the mix (same arguments as above).
StatusOr<CqiTerms> ComputeCqiTerms(
    const std::vector<TemplateProfile>& profiles,
    const ScanTimes& scan_times, int primary_index,
    const std::vector<int>& concurrent_indices, size_t concurrent_position,
    CqiVariant variant);

}  // namespace contender

#endif  // CONTENDER_CORE_CQI_H_

// QS coefficient transfer for previously-unseen templates (paper §5.3,
// Fig. 4–5): the slope µ of a new template's QS model is regressed on
// isolated latency over the reference models, and the intercept b is then
// regressed on the slope (the two coefficients are linearly related).

#ifndef CONTENDER_CORE_QS_TRANSFER_H_
#define CONTENDER_CORE_QS_TRANSFER_H_

#include <functional>
#include <map>
#include <vector>

#include "core/qs_model.h"
#include "core/template_profile.h"
#include "math/regression.h"
#include "util/statusor.h"
#include "util/units.h"

namespace contender {

/// Regressions learned from a set of reference QS models.
class QsTransferModel {
 public:
  /// Learns the two regression steps from reference models: µ ~ l_min
  /// (paper Table 3: isolated latency is the best predictor of the slope)
  /// and b ~ µ (Fig. 4's coefficient relationship). The keys of
  /// `reference_models` are template indices into `profiles`.
  static StatusOr<QsTransferModel> Fit(
      const std::vector<TemplateProfile>& profiles,
      const std::map<int, QsModel>& reference_models);

  /// Ablation variant: regresses µ on an arbitrary per-template feature
  /// (e.g., inverse spoiler slowdown — see predictor.h) instead of l_min.
  static StatusOr<QsTransferModel> FitOnFeature(
      const std::vector<TemplateProfile>& profiles,
      const std::map<int, QsModel>& reference_models,
      const std::function<double(const TemplateProfile&)>& feature);

  /// Unknown-QS (full Contender): both coefficients from isolated latency.
  [[nodiscard]] QsModel PredictFromIsolatedLatency(
      units::Seconds isolated_latency) const;

  /// Feature-variant prediction: same two-step pipeline, with the slope
  /// regressed from the fitted feature (valid for FitOnFeature models).
  [[nodiscard]] QsModel PredictFromFeatureValue(double feature_value) const;

  /// Unknown-Y: the slope is already known (measured); only the intercept
  /// is predicted from it.
  [[nodiscard]] QsModel PredictInterceptFromSlope(double known_slope) const;

  const LinearFit& slope_fit() const { return slope_fit_; }
  const LinearFit& intercept_fit() const { return intercept_fit_; }

 private:
  QsTransferModel() = default;

  LinearFit slope_fit_;      // µ = f(l_min)
  LinearFit intercept_fit_;  // b = g(µ)
};

/// Per-feature correlation study backing paper Table 3: R² of simple linear
/// regressions of each template feature against the QS y-intercept and
/// slope (signed with the correlation direction, as the paper reports
/// negative values for inverse relationships).
struct FeatureCorrelation {
  std::string feature;
  double r2_intercept = 0.0;
  double r2_slope = 0.0;
};

std::vector<FeatureCorrelation> CorrelateFeaturesWithQs(
    const std::vector<TemplateProfile>& profiles,
    const std::map<int, QsModel>& reference_models, units::Mpl spoiler_mpl);

}  // namespace contender

#endif  // CONTENDER_CORE_QS_TRANSFER_H_

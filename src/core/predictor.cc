#include "core/predictor.h"

#include <algorithm>
#include <utility>

#include "core/continuum.h"
#include "sim/batch_runner.h"

namespace contender {

StatusOr<ContenderPredictor> ContenderPredictor::Train(
    std::vector<TemplateProfile> profiles, ScanTimes scan_times,
    const std::vector<MixObservation>& observations, const Options& options) {
  if (profiles.size() < 4) {
    return Status::InvalidArgument(
        "ContenderPredictor: need >= 4 known templates");
  }
  ContenderPredictor p;
  p.options_ = options;
  p.profiles_ = std::move(profiles);
  p.scan_times_ = std::move(scan_times);

  // The per-MPL fits are independent; fan them across the pool and merge in
  // MPL order so the trained predictor is bit-identical for any pool width.
  sim::BatchRunner::Options runner_opts;
  runner_opts.threads = options.train_threads;
  runner_opts.cache = nullptr;  // model fits are cheap; no memoization
  sim::BatchRunner runner(runner_opts);

  using MplFit = std::pair<std::map<int, QsModel>, QsTransferModel>;
  std::vector<StatusOr<MplFit>> fits = runner.Map(
      options.mpls.size(), [&p, &observations, &options](size_t k)
          -> StatusOr<MplFit> {
        const units::Mpl mpl(options.mpls[k]);
        auto models = FitReferenceModels(p.profiles_, p.scan_times_,
                                         observations, mpl, options.variant);
        if (!models.ok()) return models.status();
        if (models->empty()) {
          return Status::FailedPrecondition(
              "ContenderPredictor: no reference QS models at an MPL; "
              "missing observations?");
        }
        StatusOr<QsTransferModel> transfer =
            options.transfer_feature == TransferFeature::kIsolatedLatency
                ? QsTransferModel::Fit(p.profiles_, *models)
                : QsTransferModel::FitOnFeature(
                      p.profiles_, *models, [mpl](const TemplateProfile& t) {
                        const double slowdown =
                            t.spoiler_latency.at(mpl.value()) /
                            t.isolated_latency;
                        return 1.0 / std::max(slowdown - 1.0, 0.05);
                      });
        if (!transfer.ok()) return transfer.status();
        return std::make_pair(std::move(*models), std::move(*transfer));
      });
  for (size_t k = 0; k < options.mpls.size(); ++k) {
    if (!fits[k].ok()) return fits[k].status();
    const int mpl = options.mpls[k];
    p.reference_models_[mpl] = std::move(fits[k]->first);
    p.transfer_models_.emplace(mpl, std::move(fits[k]->second));
  }

  KnnSpoilerPredictor::Options knn_opts;
  knn_opts.k = options.knn_k;
  knn_opts.train_mpls = options.spoiler_train_mpls;
  auto knn = KnnSpoilerPredictor::Fit(p.profiles_, knn_opts, &runner.pool());
  if (!knn.ok()) return knn.status();
  p.knn_spoiler_.emplace(std::move(*knn));
  return p;
}

StatusOr<ContenderPredictor> ContenderPredictor::WithRefitTemplates(
    const std::vector<MixObservation>& observations,
    const std::vector<int>& template_indices) const {
  for (int t : template_indices) {
    if (t < 0 || static_cast<size_t>(t) >= profiles_.size()) {
      return Status::InvalidArgument(
          "WithRefitTemplates: bad template index");
    }
  }
  ContenderPredictor refit = *this;
  for (const int mpl : options_.mpls) {
    auto& models = refit.reference_models_[mpl];
    for (int t : template_indices) {
      auto set = BuildQsTrainingSet(profiles_, scan_times_, observations, t,
                                    units::Mpl(mpl), options_.variant);
      // Keep the existing model when the refreshed set cannot support a
      // fit: refitting must never lose coverage the snapshot already had.
      if (!set.ok() || set->cqi.size() < 3) continue;
      auto model = FitQsModel(set->cqi, set->continuum);
      if (!model.ok()) continue;
      models[t] = *model;
    }
  }
  return refit;
}

StatusOr<std::map<int, QsModel>> ContenderPredictor::ReferenceModels(
    units::Mpl mpl) const {
  auto it = reference_models_.find(mpl.value());
  if (it == reference_models_.end()) {
    return Status::NotFound("no reference models at this MPL");
  }
  return it->second;
}

StatusOr<QsTransferModel> ContenderPredictor::TransferModel(
    units::Mpl mpl) const {
  auto it = transfer_models_.find(mpl.value());
  if (it == transfer_models_.end()) {
    return Status::NotFound("no transfer model at this MPL");
  }
  return it->second;
}

StatusOr<units::Seconds> ContenderPredictor::PredictSpoilerLatency(
    const TemplateProfile& profile, units::Mpl mpl) const {
  return knn_spoiler_->Predict(profile, mpl);
}

StatusOr<units::Seconds> ContenderPredictor::ResolveSpoiler(
    const TemplateProfile& profile, units::Mpl mpl,
    SpoilerSource source) const {
  if (source == SpoilerSource::kMeasured) {
    auto it = profile.spoiler_latency.find(mpl.value());
    if (it == profile.spoiler_latency.end()) {
      return Status::FailedPrecondition(
          "profile has no measured spoiler latency at this MPL");
    }
    return it->second;
  }
  return PredictSpoilerLatency(profile, mpl);
}

StatusOr<units::Seconds> ContenderPredictor::PredictWithModel(
    const TemplateProfile& primary, const QsModel& qs,
    const std::vector<int>& concurrent, units::Seconds l_max) const {
  std::vector<const TemplateProfile*> conc;
  for (int c : concurrent) {
    if (c < 0 || static_cast<size_t>(c) >= profiles_.size()) {
      return Status::InvalidArgument("bad concurrent template index");
    }
    conc.push_back(&profiles_[static_cast<size_t>(c)]);
  }
  auto cqi = ComputeCqiFor(primary, conc, scan_times_, options_.variant);
  if (!cqi.ok()) return cqi.status();
  // Predictions are clamped to the continuum with a small margin: positive
  // interactions can push latency slightly below l_min and steady-state
  // artifacts slightly above l_max (paper Section 6.1), but a transferred
  // model must not extrapolate beyond the meaningful range.
  CONTENDER_ASSIGN_OR_RETURN(
      const units::LatencyRange range,
      units::LatencyRange::Make(primary.isolated_latency, l_max));
  const units::ContinuumPoint point(
      std::clamp(qs.PredictContinuum(*cqi).value(), -0.25, 1.25));
  const units::Seconds latency = LatencyFromContinuum(point, range);
  // A concurrent execution can beat isolation through shared work, but
  // never by more than a modest margin.
  return std::max(latency, 0.5 * primary.isolated_latency);
}

StatusOr<units::Seconds> ContenderPredictor::PredictKnown(
    int template_index, const std::vector<int>& concurrent_indices) const {
  if (template_index < 0 ||
      static_cast<size_t>(template_index) >= profiles_.size()) {
    return Status::InvalidArgument("unknown template index");
  }
  const units::Mpl mpl(static_cast<int>(concurrent_indices.size()) + 1);
  auto models_it = reference_models_.find(mpl.value());
  if (models_it == reference_models_.end()) {
    return Status::NotFound("no reference models at this MPL");
  }
  auto model_it = models_it->second.find(template_index);
  if (model_it == models_it->second.end()) {
    return Status::NotFound("no QS model for this template at this MPL");
  }
  const TemplateProfile& primary =
      profiles_[static_cast<size_t>(template_index)];
  auto l_max = ResolveSpoiler(primary, mpl, SpoilerSource::kMeasured);
  if (!l_max.ok()) return l_max.status();
  return PredictWithModel(primary, model_it->second, concurrent_indices,
                          *l_max);
}

StatusOr<units::Seconds> ContenderPredictor::PredictNew(
    const TemplateProfile& new_profile,
    const std::vector<int>& concurrent_indices,
    SpoilerSource spoiler_source) const {
  const units::Mpl mpl(static_cast<int>(concurrent_indices.size()) + 1);
  auto transfer_it = transfer_models_.find(mpl.value());
  if (transfer_it == transfer_models_.end()) {
    return Status::NotFound("no transfer model at this MPL");
  }
  auto l_max = ResolveSpoiler(new_profile, mpl, spoiler_source);
  if (!l_max.ok()) return l_max.status();
  QsModel qs;
  if (options_.transfer_feature == TransferFeature::kIsolatedLatency) {
    qs = transfer_it->second.PredictFromIsolatedLatency(
        new_profile.isolated_latency);
  } else {
    const double slowdown = *l_max / new_profile.isolated_latency;
    qs = transfer_it->second.PredictFromFeatureValue(
        1.0 / std::max(slowdown - 1.0, 0.05));
  }
  return PredictWithModel(new_profile, qs, concurrent_indices, *l_max);
}

StatusOr<units::Seconds> ContenderPredictor::PredictNewWithKnownSlope(
    const TemplateProfile& new_profile,
    const std::vector<int>& concurrent_indices, double known_slope,
    SpoilerSource spoiler_source) const {
  const units::Mpl mpl(static_cast<int>(concurrent_indices.size()) + 1);
  auto transfer_it = transfer_models_.find(mpl.value());
  if (transfer_it == transfer_models_.end()) {
    return Status::NotFound("no transfer model at this MPL");
  }
  const QsModel qs =
      transfer_it->second.PredictInterceptFromSlope(known_slope);
  auto l_max = ResolveSpoiler(new_profile, mpl, spoiler_source);
  if (!l_max.ok()) return l_max.status();
  return PredictWithModel(new_profile, qs, concurrent_indices, *l_max);
}

}  // namespace contender

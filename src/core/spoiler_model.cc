#include "core/spoiler_model.h"

#include <future>

namespace contender {

namespace {

/// Fits every reference template's growth model, index-aligned with
/// `profiles` (fanned across `pool` when given; failed fits become errors in
/// place, so callers can skip them in deterministic order).
std::vector<StatusOr<SpoilerGrowthModel>> FitAllGrowthModels(
    const std::vector<TemplateProfile>& profiles,
    const std::vector<int>& train_mpls, ThreadPool* pool) {
  std::vector<StatusOr<SpoilerGrowthModel>> out;
  out.reserve(profiles.size());
  if (pool == nullptr) {
    for (const TemplateProfile& p : profiles) {
      out.push_back(FitSpoilerGrowth(p, train_mpls));
    }
    return out;
  }
  std::vector<std::future<StatusOr<SpoilerGrowthModel>>> futures;
  futures.reserve(profiles.size());
  for (const TemplateProfile& p : profiles) {
    futures.push_back(pool->Submit(
        [&p, &train_mpls] { return FitSpoilerGrowth(p, train_mpls); }));
  }
  for (auto& future : futures) out.push_back(future.get());
  return out;
}

}  // namespace

StatusOr<SpoilerGrowthModel> FitSpoilerGrowth(
    const TemplateProfile& profile, const std::vector<int>& train_mpls) {
  if (profile.isolated_latency.value() <= 0.0) {
    return Status::InvalidArgument(
        "FitSpoilerGrowth: non-positive isolated latency");
  }
  std::vector<double> x, y;
  for (int mpl : train_mpls) {
    units::Seconds latency;
    if (mpl <= 1) {
      latency = profile.isolated_latency;
    } else {
      auto it = profile.spoiler_latency.find(mpl);
      if (it == profile.spoiler_latency.end()) continue;
      latency = it->second;
    }
    x.push_back(static_cast<double>(mpl));
    y.push_back(latency / profile.isolated_latency);  // slowdown ratio
  }
  if (x.size() < 2) {
    return Status::FailedPrecondition(
        "FitSpoilerGrowth: need spoiler latencies at >= 2 MPLs");
  }
  auto fit = FitSimpleLinear(x, y);
  if (!fit.ok()) return fit.status();
  SpoilerGrowthModel model;
  model.slope = fit->slope;
  model.intercept = fit->intercept;
  model.r_squared = fit->r_squared;
  return model;
}

StatusOr<KnnSpoilerPredictor> KnnSpoilerPredictor::Fit(
    const std::vector<TemplateProfile>& reference_profiles,
    const Options& options, ThreadPool* pool) {
  std::vector<StatusOr<SpoilerGrowthModel>> growths =
      FitAllGrowthModels(reference_profiles, options.train_mpls, pool);
  std::vector<Vector> features;
  std::vector<Vector> targets;
  for (size_t i = 0; i < reference_profiles.size(); ++i) {
    const StatusOr<SpoilerGrowthModel>& growth = growths[i];
    if (!growth.ok()) continue;
    const TemplateProfile& p = reference_profiles[i];
    features.push_back({p.working_set_bytes.value(), p.io_fraction.value()});
    targets.push_back({growth->slope, growth->intercept});
  }
  if (features.size() < static_cast<size_t>(options.k)) {
    return Status::FailedPrecondition(
        "KnnSpoilerPredictor: not enough reference templates");
  }
  KnnRegressor::Options knn_opts;
  knn_opts.k = options.k;
  knn_opts.normalize = true;
  auto knn = KnnRegressor::Fit(std::move(features), std::move(targets),
                               knn_opts);
  if (!knn.ok()) return knn.status();
  KnnSpoilerPredictor out;
  out.options_ = options;
  out.knn_.emplace(std::move(*knn));
  return out;
}

StatusOr<SpoilerGrowthModel> KnnSpoilerPredictor::PredictGrowthModel(
    const TemplateProfile& target) const {
  if (!knn_.has_value()) {
    return Status::FailedPrecondition("KnnSpoilerPredictor: not fitted");
  }
  const Vector coeffs = knn_->Predict(
      {target.working_set_bytes.value(), target.io_fraction.value()});
  SpoilerGrowthModel model;
  model.slope = coeffs[0];
  model.intercept = coeffs[1];
  return model;
}

StatusOr<units::Seconds> KnnSpoilerPredictor::Predict(
    const TemplateProfile& target, units::Mpl mpl) const {
  auto model = PredictGrowthModel(target);
  if (!model.ok()) return model.status();
  return model->PredictLatency(mpl, target.isolated_latency);
}

StatusOr<IoTimeSpoilerPredictor> IoTimeSpoilerPredictor::Fit(
    const std::vector<TemplateProfile>& reference_profiles,
    const std::vector<int>& train_mpls, ThreadPool* pool) {
  std::vector<StatusOr<SpoilerGrowthModel>> growths =
      FitAllGrowthModels(reference_profiles, train_mpls, pool);
  std::vector<double> pt, slopes, intercepts;
  for (size_t i = 0; i < reference_profiles.size(); ++i) {
    const StatusOr<SpoilerGrowthModel>& growth = growths[i];
    if (!growth.ok()) continue;
    const TemplateProfile& p = reference_profiles[i];
    pt.push_back(p.io_fraction.value());
    slopes.push_back(growth->slope);
    intercepts.push_back(growth->intercept);
  }
  if (pt.size() < 3) {
    return Status::FailedPrecondition(
        "IoTimeSpoilerPredictor: not enough reference templates");
  }
  IoTimeSpoilerPredictor out;
  auto slope_fit = FitSimpleLinear(pt, slopes);
  if (!slope_fit.ok()) return slope_fit.status();
  out.slope_fit_ = *slope_fit;
  auto intercept_fit = FitSimpleLinear(pt, intercepts);
  if (!intercept_fit.ok()) return intercept_fit.status();
  out.intercept_fit_ = *intercept_fit;
  return out;
}

StatusOr<units::Seconds> IoTimeSpoilerPredictor::Predict(
    const TemplateProfile& target, units::Mpl mpl) const {
  SpoilerGrowthModel model;
  model.slope = slope_fit_.Predict(target.io_fraction.value());
  model.intercept = intercept_fit_.Predict(target.io_fraction.value());
  return model.PredictLatency(mpl, target.isolated_latency);
}

}  // namespace contender

#include "core/qs_transfer.h"

#include <cmath>
#include <functional>

#include "math/metrics.h"

namespace contender {

StatusOr<QsTransferModel> QsTransferModel::Fit(
    const std::vector<TemplateProfile>& profiles,
    const std::map<int, QsModel>& reference_models) {
  return FitOnFeature(profiles, reference_models,
                      [](const TemplateProfile& p) {
                        return p.isolated_latency.value();
                      });
}

StatusOr<QsTransferModel> QsTransferModel::FitOnFeature(
    const std::vector<TemplateProfile>& profiles,
    const std::map<int, QsModel>& reference_models,
    const std::function<double(const TemplateProfile&)>& feature) {
  std::vector<double> lmin, slopes, intercepts;
  for (const auto& [index, model] : reference_models) {
    if (index < 0 || static_cast<size_t>(index) >= profiles.size()) {
      return Status::InvalidArgument("QsTransferModel: bad template index");
    }
    lmin.push_back(feature(profiles[static_cast<size_t>(index)]));
    slopes.push_back(model.slope);
    intercepts.push_back(model.intercept);
  }
  if (lmin.size() < 3) {
    return Status::FailedPrecondition(
        "QsTransferModel: need >= 3 reference models");
  }
  QsTransferModel out;
  auto slope_fit = FitSimpleLinear(lmin, slopes);
  if (!slope_fit.ok()) return slope_fit.status();
  out.slope_fit_ = *slope_fit;
  auto intercept_fit = FitSimpleLinear(slopes, intercepts);
  if (!intercept_fit.ok()) return intercept_fit.status();
  out.intercept_fit_ = *intercept_fit;
  return out;
}

QsModel QsTransferModel::PredictFromIsolatedLatency(
    units::Seconds isolated_latency) const {
  return PredictFromFeatureValue(isolated_latency.value());
}

QsModel QsTransferModel::PredictFromFeatureValue(double feature_value) const {
  QsModel model;
  model.slope = slope_fit_.Predict(feature_value);
  model.intercept = intercept_fit_.Predict(model.slope);
  return model;
}

QsModel QsTransferModel::PredictInterceptFromSlope(double known_slope) const {
  QsModel model;
  model.slope = known_slope;
  model.intercept = intercept_fit_.Predict(known_slope);
  return model;
}

std::vector<FeatureCorrelation> CorrelateFeaturesWithQs(
    const std::vector<TemplateProfile>& profiles,
    const std::map<int, QsModel>& reference_models, units::Mpl spoiler_mpl) {
  std::vector<double> slopes, intercepts;
  std::vector<const TemplateProfile*> rows;
  for (const auto& [index, model] : reference_models) {
    if (index < 0 || static_cast<size_t>(index) >= profiles.size()) continue;
    rows.push_back(&profiles[static_cast<size_t>(index)]);
    slopes.push_back(model.slope);
    intercepts.push_back(model.intercept);
  }

  auto spoiler = [&](const TemplateProfile& p) {
    auto it = p.spoiler_latency.find(spoiler_mpl.value());
    return it == p.spoiler_latency.end() ? 0.0 : it->second.value();
  };

  struct FeatureDef {
    const char* name;
    std::function<double(const TemplateProfile&)> get;
  };
  const std::vector<FeatureDef> features = {
      {"% execution time spent on I/O",
       [](const TemplateProfile& p) { return p.io_fraction.value(); }},
      {"Max working set",
       [](const TemplateProfile& p) { return p.working_set_bytes.value(); }},
      {"Query plan steps",
       [](const TemplateProfile& p) {
         return static_cast<double>(p.plan_steps);
       }},
      {"Records accessed",
       [](const TemplateProfile& p) { return p.records_accessed; }},
      {"Isolated latency",
       [](const TemplateProfile& p) { return p.isolated_latency.value(); }},
      {"Spoiler latency", spoiler},
      {"Spoiler slowdown",
       [&](const TemplateProfile& p) {
         return p.isolated_latency.value() > 0.0
                    ? spoiler(p) / p.isolated_latency.value()
                    : 0.0;
       }},
  };

  // Signed R² (the paper reports sign to convey correlation direction):
  // R² of the simple regression equals r², signed by Pearson's r.
  auto signed_r2 = [](const std::vector<double>& x,
                      const std::vector<double>& y) {
    const double r = PearsonCorrelation(x, y);
    return (r >= 0.0 ? 1.0 : -1.0) * r * r;
  };

  std::vector<FeatureCorrelation> out;
  for (const FeatureDef& f : features) {
    std::vector<double> x;
    for (const TemplateProfile* p : rows) x.push_back(f.get(*p));
    FeatureCorrelation fc;
    fc.feature = f.name;
    fc.r2_intercept = signed_r2(x, intercepts);
    fc.r2_slope = signed_r2(x, slopes);
    out.push_back(fc);
  }
  return out;
}

}  // namespace contender

// Spoiler-latency models (paper §5.5): per-template linear growth in MPL,
// and two predictors of a *new* template's spoiler latency from isolated
// statistics alone — Contender's KNN over (working-set size, I/O fraction)
// and the I/O-Time regression baseline.

#ifndef CONTENDER_CORE_SPOILER_MODEL_H_
#define CONTENDER_CORE_SPOILER_MODEL_H_

#include <map>
#include <optional>
#include <vector>

#include "core/template_profile.h"
#include "math/regression.h"
#include "ml/knn.h"
#include "util/statusor.h"
#include "util/thread_pool.h"
#include "util/units.h"

namespace contender {

/// l_max(n) = µ · n + b for one template (Eq. 8). To compare templates of
/// different weights the growth model is fit on the slowdown ratio
/// l_max(n) / l_min, which is scale-independent (§5.5).
struct SpoilerGrowthModel {
  double slope = 0.0;      ///< slowdown per MPL step
  double intercept = 0.0;  ///< slowdown at MPL 0 (extrapolated)
  double r_squared = 0.0;

  /// Predicted spoiler latency at `mpl` for a template with the given
  /// isolated latency.
  [[nodiscard]] units::Seconds PredictLatency(
      units::Mpl mpl, units::Seconds isolated_latency) const {
    return (slope * static_cast<double>(mpl.value()) + intercept) *
           isolated_latency;
  }
};

/// Fits the growth model from measured spoiler latencies. MPL 1 is treated
/// as the isolated latency. Requires >= 2 distinct MPLs.
StatusOr<SpoilerGrowthModel> FitSpoilerGrowth(
    const TemplateProfile& profile, const std::vector<int>& train_mpls);

/// Contender's constant-time predictor: KNN over (working-set size, I/O
/// fraction) averaging the growth-model coefficients of the k nearest known
/// templates (§5.5).
class KnnSpoilerPredictor {
 public:
  struct Options {
    int k = 3;
    /// MPLs used to fit each reference template's growth model.
    std::vector<int> train_mpls = {1, 2, 3, 4, 5};
  };

  /// Fits one growth model per reference template (fanned across `pool`
  /// when non-null; the result is identical either way).
  static StatusOr<KnnSpoilerPredictor> Fit(
      const std::vector<TemplateProfile>& reference_profiles,
      const Options& options, ThreadPool* pool = nullptr);

  /// Predicted l_max of `target` at `mpl` using only its isolated stats.
  StatusOr<units::Seconds> Predict(const TemplateProfile& target,
                                   units::Mpl mpl) const;

  /// The averaged growth coefficients for a target (for diagnostics).
  StatusOr<SpoilerGrowthModel> PredictGrowthModel(
      const TemplateProfile& target) const;

 private:
  KnnSpoilerPredictor() = default;
  Options options_;
  std::optional<KnnRegressor> knn_;
};

/// The I/O-Time baseline (§6.4): both growth coefficients regressed on the
/// isolated I/O fraction p_t.
class IoTimeSpoilerPredictor {
 public:
  static StatusOr<IoTimeSpoilerPredictor> Fit(
      const std::vector<TemplateProfile>& reference_profiles,
      const std::vector<int>& train_mpls, ThreadPool* pool = nullptr);

  StatusOr<units::Seconds> Predict(const TemplateProfile& target,
                                   units::Mpl mpl) const;

 private:
  IoTimeSpoilerPredictor() = default;
  LinearFit slope_fit_;      // growth slope ~ p_t
  LinearFit intercept_fit_;  // growth intercept ~ p_t
};

}  // namespace contender

#endif  // CONTENDER_CORE_SPOILER_MODEL_H_

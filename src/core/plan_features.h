// Query-plan feature extraction for the §3 machine-learning baselines.
//
// The global feature space holds, for every plan operator type, (i) the
// number of occurrences in the plan and (ii) the summed cardinality
// estimate of its instances; sequential scans are additionally broken out
// per table, so shared-scan opportunities are visible to the learners. A
// mix example concatenates the primary's vector with the element-wise sum
// of the concurrent queries' vectors (2n + 2n = 4n features, paper §3).

#ifndef CONTENDER_CORE_PLAN_FEATURES_H_
#define CONTENDER_CORE_PLAN_FEATURES_H_

#include <vector>

#include "catalog/catalog.h"
#include "math/matrix.h"
#include "workload/query_plan.h"

namespace contender {

/// Stateless extractor bound to a catalog (the per-table features need the
/// schema).
class PlanFeatureExtractor {
 public:
  explicit PlanFeatureExtractor(const Catalog* catalog);

  /// Features of one query plan: 2 * num-operator-types + 2 * num-tables.
  Vector ExtractQueryFeatures(const PlanNode& plan) const;

  /// Features of a (primary, concurrent set) example: the primary's vector
  /// concatenated with the summed concurrent vectors.
  Vector ExtractMixFeatures(
      const PlanNode& primary,
      const std::vector<const PlanNode*>& concurrent) const;

  /// Dimensionality of ExtractQueryFeatures output.
  size_t query_feature_dim() const;

  /// Dimensionality of ExtractMixFeatures output (2x the above).
  size_t mix_feature_dim() const { return 2 * query_feature_dim(); }

 private:
  const Catalog* catalog_;
};

}  // namespace contender

#endif  // CONTENDER_CORE_PLAN_FEATURES_H_

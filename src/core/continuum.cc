#include "core/continuum.h"

namespace contender {

namespace {
Status ValidateRange(double l_min, double l_max) {
  if (l_min <= 0.0) {
    return Status::InvalidArgument("continuum: l_min must be positive");
  }
  if (l_max <= l_min) {
    return Status::InvalidArgument("continuum: l_max must exceed l_min");
  }
  return Status::OK();
}
}  // namespace

StatusOr<double> ContinuumPoint(double latency, double l_min, double l_max) {
  CONTENDER_RETURN_IF_ERROR(ValidateRange(l_min, l_max));
  return (latency - l_min) / (l_max - l_min);
}

StatusOr<double> LatencyFromContinuum(double point, double l_min,
                                      double l_max) {
  CONTENDER_RETURN_IF_ERROR(ValidateRange(l_min, l_max));
  return point * (l_max - l_min) + l_min;
}

bool ExceedsContinuum(double latency, double l_max) {
  return latency > 1.05 * l_max;
}

}  // namespace contender

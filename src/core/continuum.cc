#include "core/continuum.h"

namespace contender {

StatusOr<units::ContinuumPoint> ContinuumPoint(
    units::Seconds latency, const units::LatencyRange& range) {
  if (!(latency.value() >= 0.0)) {  // also rejects NaN
    return Status::InvalidArgument("continuum: latency must be non-negative");
  }
  return units::ContinuumPoint((latency - range.min()) / range.width());
}

units::Seconds LatencyFromContinuum(units::ContinuumPoint point,
                                    const units::LatencyRange& range) {
  return point.value() * range.width() + range.min();
}

bool ExceedsContinuum(units::Seconds latency, units::Seconds l_max) {
  return latency > 1.05 * l_max;
}

}  // namespace contender

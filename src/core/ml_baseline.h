// The §3 machine-learning baselines for CQPP: KCCA and SVM over query-plan
// feature vectors of concurrent mixes. These exist to reproduce the paper's
// negative result — they work tolerably on static workloads and break down
// on unseen templates.

#ifndef CONTENDER_CORE_ML_BASELINE_H_
#define CONTENDER_CORE_ML_BASELINE_H_

#include <vector>

#include "core/template_profile.h"
#include "math/matrix.h"
#include "util/statusor.h"
#include "workload/workload.h"

namespace contender {

/// One example per mix observation: 4n plan features plus the observed
/// primary latency.
struct MlDataset {
  std::vector<Vector> features;
  std::vector<double> latencies;
  /// Workload index of each example's primary (for template-level splits).
  std::vector<int> primary_index;
};

/// Builds the dataset from steady-state observations (plans are the
/// nominal template plans, as an optimizer would expose them).
MlDataset BuildMlDataset(const Workload& workload,
                         const std::vector<MixObservation>& observations);

/// Trains KCCA on the train split and returns MRE on the test split.
StatusOr<double> EvaluateKccaMre(const MlDataset& data,
                                 const std::vector<size_t>& train,
                                 const std::vector<size_t>& test);

/// Trains ε-SVR ("SVM") on the train split and returns MRE on the test
/// split.
StatusOr<double> EvaluateSvmMre(const MlDataset& data,
                                const std::vector<size_t>& train,
                                const std::vector<size_t>& test,
                                uint64_t seed = 1);

/// Per-template leave-one-template-out evaluation (Fig. 3): trains on all
/// examples whose primary is not `held_out_template`, tests on the rest.
struct NewTemplateMlResult {
  int template_id = 0;
  double kcca_mre = 0.0;
  double svm_mre = 0.0;
  int test_examples = 0;
};

StatusOr<NewTemplateMlResult> EvaluateNewTemplateMl(
    const Workload& workload, const MlDataset& data, int held_out_index,
    uint64_t seed = 1);

}  // namespace contender

#endif  // CONTENDER_CORE_ML_BASELINE_H_

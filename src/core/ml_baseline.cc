#include "core/ml_baseline.h"

#include "core/plan_features.h"
#include "math/metrics.h"
#include "ml/kcca.h"
#include "ml/svm.h"

namespace contender {

MlDataset BuildMlDataset(const Workload& workload,
                         const std::vector<MixObservation>& observations) {
  PlanFeatureExtractor extractor(&workload.catalog());
  // Plans are template-level; build each once.
  std::vector<PlanNode> plans;
  plans.reserve(static_cast<size_t>(workload.size()));
  for (int i = 0; i < workload.size(); ++i) {
    plans.push_back(workload.NominalPlan(i));
  }

  MlDataset data;
  for (const MixObservation& obs : observations) {
    std::vector<const PlanNode*> concurrent;
    for (int c : obs.concurrent_indices) {
      concurrent.push_back(&plans[static_cast<size_t>(c)]);
    }
    data.features.push_back(extractor.ExtractMixFeatures(
        plans[static_cast<size_t>(obs.primary_index)], concurrent));
    data.latencies.push_back(obs.latency.value());
    data.primary_index.push_back(obs.primary_index);
  }
  return data;
}

namespace {

template <typename Model>
double TestMre(const Model& model, const MlDataset& data,
               const std::vector<size_t>& test) {
  std::vector<double> observed, predicted;
  for (size_t i : test) {
    observed.push_back(data.latencies[i]);
    predicted.push_back(model.Predict(data.features[i]));
  }
  return MeanRelativeError(observed, predicted);
}

}  // namespace

StatusOr<double> EvaluateKccaMre(const MlDataset& data,
                                 const std::vector<size_t>& train,
                                 const std::vector<size_t>& test) {
  std::vector<Vector> x;
  std::vector<Vector> y;
  for (size_t i : train) {
    x.push_back(data.features[i]);
    y.push_back({data.latencies[i]});
  }
  KccaModel::Options opts;
  opts.num_projections = 2;
  opts.num_neighbors = 3;
  auto model = KccaModel::Fit(x, y, opts);
  if (!model.ok()) return model.status();

  std::vector<double> observed, predicted;
  for (size_t i : test) {
    observed.push_back(data.latencies[i]);
    predicted.push_back(model->PredictLatency(data.features[i]));
  }
  return MeanRelativeError(observed, predicted);
}

StatusOr<double> EvaluateSvmMre(const MlDataset& data,
                                const std::vector<size_t>& train,
                                const std::vector<size_t>& test,
                                uint64_t seed) {
  std::vector<Vector> x;
  std::vector<double> y;
  for (size_t i : train) {
    x.push_back(data.features[i]);
    y.push_back(data.latencies[i]);
  }
  SvrModel::Options opts;
  opts.seed = seed;
  auto model = SvrModel::Fit(x, y, opts);
  if (!model.ok()) return model.status();
  return TestMre(*model, data, test);
}

StatusOr<NewTemplateMlResult> EvaluateNewTemplateMl(
    const Workload& workload, const MlDataset& data, int held_out_index,
    uint64_t seed) {
  std::vector<size_t> train, test;
  for (size_t i = 0; i < data.features.size(); ++i) {
    if (data.primary_index[i] == held_out_index) {
      test.push_back(i);
    } else {
      // Also exclude mixes that merely contain the held-out template as a
      // concurrent query? The paper holds out the template as a primary;
      // concurrent appearances stay in the training pool, matching the
      // scenario of a new query arriving into a known background workload.
      train.push_back(i);
    }
  }
  if (test.empty()) {
    return Status::InvalidArgument("held-out template has no observations");
  }
  NewTemplateMlResult result;
  result.template_id = workload.tmpl(held_out_index).id;
  result.test_examples = static_cast<int>(test.size());
  auto kcca = EvaluateKccaMre(data, train, test);
  if (!kcca.ok()) return kcca.status();
  result.kcca_mre = *kcca;
  auto svm = EvaluateSvmMre(data, train, test, seed);
  if (!svm.ok()) return svm.status();
  result.svm_mre = *svm;
  return result;
}

}  // namespace contender

// The performance continuum (paper §5.1, Eq. 6): a template's latency range
// between its isolated execution (l_min) and its spoiler latency (l_max),
// and the normalization of observations onto that range.

#ifndef CONTENDER_CORE_CONTINUUM_H_
#define CONTENDER_CORE_CONTINUUM_H_

#include "util/statusor.h"

namespace contender {

/// c_{t,m} = (l - l_min) / (l_max - l_min). Requires l_max > l_min.
/// Observations may legitimately fall slightly outside [0, 1] (steady-state
/// artifacts, §6.1); no clamping is applied here.
StatusOr<double> ContinuumPoint(double latency, double l_min, double l_max);

/// Inverse of Eq. 6: latency = c * (l_max - l_min) + l_min.
StatusOr<double> LatencyFromContinuum(double point, double l_min,
                                      double l_max);

/// The §6.1 outlier rule: observations above 105% of the spoiler latency
/// measurably exceed the continuum and are excluded from evaluation.
bool ExceedsContinuum(double latency, double l_max);

}  // namespace contender

#endif  // CONTENDER_CORE_CONTINUUM_H_

// The performance continuum (paper §5.1, Eq. 6): a template's latency range
// between its isolated execution (l_min) and its spoiler latency (l_max),
// and the normalization of observations onto that range.
//
// The range preconditions (l_min > 0, l_max > l_min) live in
// units::LatencyRange::Make, so a degenerate range is rejected once at
// construction and the mapping functions below cannot be called with a
// swapped (l_max, l_min) pair — that is now a type error.

#ifndef CONTENDER_CORE_CONTINUUM_H_
#define CONTENDER_CORE_CONTINUUM_H_

#include "util/statusor.h"
#include "util/units.h"

namespace contender {

/// c_{t,m} = (l - l_min) / (l_max - l_min). Rejects negative (or NaN)
/// latencies with InvalidArgument. Observations may legitimately fall
/// slightly outside [0, 1] (steady-state artifacts, §6.1); no clamping is
/// applied here.
StatusOr<units::ContinuumPoint> ContinuumPoint(units::Seconds latency,
                                               const units::LatencyRange&
                                                   range);

/// Inverse of Eq. 6: latency = c * (l_max - l_min) + l_min. Total: the
/// range is validated at construction.
[[nodiscard]] units::Seconds LatencyFromContinuum(
    units::ContinuumPoint point, const units::LatencyRange& range);

/// The §6.1 outlier rule: observations *strictly above* 105% of the spoiler
/// latency measurably exceed the continuum and are excluded from
/// evaluation; an observation exactly at the 105% boundary is kept.
[[nodiscard]] bool ExceedsContinuum(units::Seconds latency,
                                    units::Seconds l_max);

}  // namespace contender

#endif  // CONTENDER_CORE_CONTINUUM_H_

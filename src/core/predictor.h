// The end-to-end Contender pipeline (paper Fig. 5): train reference QS
// models on a known workload, then predict concurrent latency for known
// templates (via their own QS model) and for new templates (via QS
// coefficient transfer plus measured or KNN-predicted spoiler latency).

#ifndef CONTENDER_CORE_PREDICTOR_H_
#define CONTENDER_CORE_PREDICTOR_H_

#include <map>
#include <optional>
#include <vector>

#include "core/cqi.h"
#include "core/qs_model.h"
#include "core/qs_transfer.h"
#include "core/spoiler_model.h"
#include "core/template_profile.h"
#include "util/statusor.h"
#include "util/units.h"

namespace contender {

/// Which isolated statistic the QS slope is transferred from (§5.3).
enum class TransferFeature {
  /// The paper's choice: µ regressed on isolated latency (Table 3).
  kIsolatedLatency,
  /// Ablation: µ regressed on 1 / (l_max/l_min - 1). The QS slope is
  /// approximately (mix sensitivity) / (spoiler range), so the inverse
  /// spoiler slowdown is the theory-suggested predictor; it uses only
  /// information Contender already has (the measured or KNN-predicted
  /// spoiler latency).
  kInverseSpoilerSlowdown,
};

/// Where a new template's continuum upper bound comes from.
enum class SpoilerSource {
  /// Measured spoiler latency in the profile (linear-time sampling).
  kMeasured,
  /// KNN-predicted from isolated statistics (constant-time sampling).
  kKnnPredicted,
};

/// Trained Contender predictor for one workload and hardware model.
class ContenderPredictor {
 public:
  struct Options {
    /// MPLs with reference models.
    std::vector<int> mpls = {2, 3, 4, 5};
    CqiVariant variant = CqiVariant::kFull;
    /// Neighbors for spoiler prediction.
    int knn_k = 3;
    /// MPLs used when fitting reference spoiler growth models.
    std::vector<int> spoiler_train_mpls = {1, 2, 3, 4, 5};
    /// Feature the QS slope is transferred from for new templates.
    TransferFeature transfer_feature = TransferFeature::kIsolatedLatency;
    /// Pool width for the per-MPL model fits; <= 0 selects hardware
    /// concurrency. Results are bit-identical for every width.
    int train_threads = 0;
  };

  /// Trains on the known workload: isolated profiles (with spoiler
  /// latencies), fact-table scan times, and steady-state mix observations.
  static StatusOr<ContenderPredictor> Train(
      std::vector<TemplateProfile> profiles, ScanTimes scan_times,
      const std::vector<MixObservation>& observations,
      const Options& options);

  /// Predicts the latency of a *known* template (index into the training
  /// profiles) executing with the given concurrent templates.
  StatusOr<units::Seconds> PredictKnown(
      int template_index, const std::vector<int>& concurrent_indices) const;

  /// Predicts the latency of a *new* template described only by
  /// `new_profile` (isolated stats + plan semantics; spoiler latencies
  /// required only for SpoilerSource::kMeasured). Concurrent queries are
  /// known-workload indices.
  StatusOr<units::Seconds> PredictNew(
      const TemplateProfile& new_profile,
      const std::vector<int>& concurrent_indices,
      SpoilerSource spoiler_source) const;

  /// Unknown-Y variant (§6.3): the new template's own QS slope is supplied;
  /// only the intercept is transferred.
  StatusOr<units::Seconds> PredictNewWithKnownSlope(
      const TemplateProfile& new_profile,
      const std::vector<int>& concurrent_indices, double known_slope,
      SpoilerSource spoiler_source) const;

  /// Online-refit entry point (§6: the models are cheap enough to maintain
  /// incrementally): returns a copy of this predictor whose per-template QS
  /// reference models for `template_indices` are refit at every trained MPL
  /// from `observations` — the *full* training set, i.e. the original
  /// observations plus whatever has streamed in since. Transfer models,
  /// the spoiler KNN and the profiles are untouched. A template whose
  /// refreshed training set is too small or degenerate at some MPL keeps
  /// its existing model there, so a refit never loses coverage.
  /// serve::RefitController builds hot-swappable snapshots through this.
  StatusOr<ContenderPredictor> WithRefitTemplates(
      const std::vector<MixObservation>& observations,
      const std::vector<int>& template_indices) const;

  // Accessors for experiment harnesses.
  const std::vector<TemplateProfile>& profiles() const { return profiles_; }
  const ScanTimes& scan_times() const { return scan_times_; }
  /// Reference QS models at `mpl` (template index -> model).
  StatusOr<std::map<int, QsModel>> ReferenceModels(units::Mpl mpl) const;
  StatusOr<QsTransferModel> TransferModel(units::Mpl mpl) const;
  const KnnSpoilerPredictor& knn_spoiler() const { return *knn_spoiler_; }
  /// Predicted spoiler latency for an arbitrary profile.
  StatusOr<units::Seconds> PredictSpoilerLatency(
      const TemplateProfile& profile, units::Mpl mpl) const;

 private:
  ContenderPredictor() = default;

  StatusOr<units::Seconds> PredictWithModel(
      const TemplateProfile& primary, const QsModel& qs,
      const std::vector<int>& concurrent, units::Seconds l_max) const;
  StatusOr<units::Seconds> ResolveSpoiler(const TemplateProfile& profile,
                                          units::Mpl mpl,
                                          SpoilerSource source) const;

  Options options_;
  std::vector<TemplateProfile> profiles_;
  ScanTimes scan_times_;
  std::map<int, std::map<int, QsModel>> reference_models_;  // mpl -> models
  std::map<int, QsTransferModel> transfer_models_;          // mpl -> transfer
  std::optional<KnnSpoilerPredictor> knn_spoiler_;
};

}  // namespace contender

#endif  // CONTENDER_CORE_PREDICTOR_H_

#include "core/plan_features.h"

namespace contender {

PlanFeatureExtractor::PlanFeatureExtractor(const Catalog* catalog)
    : catalog_(catalog) {}

size_t PlanFeatureExtractor::query_feature_dim() const {
  return 2 * static_cast<size_t>(PlanNodeType::kNumTypes) +
         2 * catalog_->tables().size();
}

Vector PlanFeatureExtractor::ExtractQueryFeatures(const PlanNode& plan) const {
  const size_t num_types = static_cast<size_t>(PlanNodeType::kNumTypes);
  const size_t num_tables = catalog_->tables().size();
  Vector f(2 * num_types + 2 * num_tables, 0.0);
  VisitPlan(plan, [&](const PlanNode& n) {
    const size_t t = static_cast<size_t>(n.type);
    f[2 * t] += 1.0;
    f[2 * t + 1] += n.rows;
    if (n.type == PlanNodeType::kSeqScan && n.table >= 0 &&
        static_cast<size_t>(n.table) < num_tables) {
      const size_t base = 2 * num_types + 2 * static_cast<size_t>(n.table);
      f[base] += 1.0;
      f[base + 1] += n.rows;
    }
  });
  return f;
}

Vector PlanFeatureExtractor::ExtractMixFeatures(
    const PlanNode& primary,
    const std::vector<const PlanNode*>& concurrent) const {
  Vector p = ExtractQueryFeatures(primary);
  Vector c(p.size(), 0.0);
  for (const PlanNode* plan : concurrent) {
    Vector one = ExtractQueryFeatures(*plan);
    for (size_t i = 0; i < c.size(); ++i) c[i] += one[i];
  }
  Vector out;
  out.reserve(2 * p.size());
  out.insert(out.end(), p.begin(), p.end());
  out.insert(out.end(), c.begin(), c.end());
  return out;
}

}  // namespace contender

// Streaming ingest of observed concurrent latencies. Each record is a
// MixObservation — (template, mix, MPL, observed latency) — validated and
// scored against the *live* snapshot at ingest time: the observation's
// continuum point (Eq. 6, against the template's [l_min, l_max] range at
// its MPL) minus the snapshot's predicted continuum point is the residual
// the RefitController's drift trigger watches. Records accumulate in a
// pending buffer until the controller drains them into the training set.
//
// Concurrency: the pending buffer is sharded. Each ingesting thread is
// assigned a shard (by thread ordinal), so concurrent producers append to
// disjoint vectors under disjoint, cache-line-padded mutexes and the only
// cross-thread rendezvous is a relaxed fetch_add on the capacity gate.
// The snapshot consulted for the residual comes from the service's
// lock-free SnapshotHolder (an epoch-pinned view, not a refcount bump).
//
// Determinism: the residual is a pure function of (observation, snapshot).
// Drain merges shards canonically — shard 0's records in ingest order,
// then shard 1's, and so on — and replays the residual summary in that
// merged order, so replaying the same per-shard streams reproduces the
// batch bit-exactly. A single-threaded producer lands in exactly one
// shard, so the merged order IS its ingest order and the log behaves
// bit-identically to the unsharded implementation. Tests that need full
// control of placement use IngestInShard directly.
//
// Failure handling: each accepted residual also feeds the service's
// HealthTracker (when one is attached), records rejected because the
// pending buffer is full are counted in overflow_dropped(), and batches a
// refit abandoned are quarantined into a bounded dead-letter buffer
// (Quarantine/TakeDeadLetter) instead of silently re-entering training.

#ifndef CONTENDER_SERVE_OBSERVATION_LOG_H_
#define CONTENDER_SERVE_OBSERVATION_LOG_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/template_profile.h"
#include "serve/service.h"
#include "util/cacheline.h"
#include "util/mutex.h"
#include "util/statusor.h"
#include "util/summary_stats.h"
#include "util/thread_annotations.h"

namespace contender::serve {

/// What Ingest computed for one accepted record.
struct IngestResult {
  /// Observed minus predicted continuum point (signed; relative latency
  /// error when the snapshot has no spoiler range at the record's MPL).
  double continuum_residual = 0.0;
  /// Version of the snapshot the residual was computed against.
  uint64_t snapshot_version = 0;
  /// Which shard buffered the record (for tests auditing placement).
  int shard = -1;
};

/// One drained refit batch.
struct ObservationBatch {
  /// The pending records, in canonical merged order (shard index, then
  /// per-shard ingest sequence).
  std::vector<MixObservation> observations;
  /// Mean |continuum_residual| over those records (0 when empty),
  /// accumulated by replaying the merged order.
  double mean_abs_residual = 0.0;
};

/// Thread-safe streaming log of latency observations for one service.
class ObservationLog {
 public:
  struct Options {
    /// Pending-buffer bound across all shards; Ingest rejects past it with
    /// ResourceExhausted (the controller is not draining — dropping
    /// silently would skew the refit toward old data).
    size_t pending_capacity = 65536;
    /// Dead-letter-buffer bound; Quarantine drops (and counts) past it.
    size_t dead_letter_capacity = 1024;
    /// Pending-buffer shard count (>= 1). Concurrent producers land in
    /// different shards; one producer always lands in one shard.
    int num_shards = 16;
  };

  /// `service` must outlive the log.
  explicit ObservationLog(const PredictionService* service);
  ObservationLog(const PredictionService* service, const Options& options);

  ObservationLog(const ObservationLog&) = delete;
  ObservationLog& operator=(const ObservationLog&) = delete;

  /// Validates and appends one record to the calling thread's shard.
  /// InvalidArgument for out-of-range indices, an MPL that does not match
  /// the mix size, or a non-positive latency; ResourceExhausted when the
  /// pending buffer is full.
  StatusOr<IngestResult> Ingest(const MixObservation& observation);

  /// Ingest with explicit shard placement (tests proving merge
  /// determinism; `shard` is taken modulo num_shards).
  StatusOr<IngestResult> IngestInShard(int shard,
                                       const MixObservation& observation);

  /// Removes and returns every pending record, merged canonically by
  /// (shard index, per-shard sequence), with its residual summary.
  ObservationBatch Drain();

  /// Parks records whose refit failed in the bounded dead-letter buffer
  /// (they are suspected of poisoning the fit, so they must NOT rejoin
  /// the training set automatically). Past dead_letter_capacity the
  /// oldest survivors stay and the excess is dropped and counted.
  void Quarantine(std::vector<MixObservation> observations);

  /// Removes and returns the dead-letter buffer (for offline forensics).
  [[nodiscard]] std::vector<MixObservation> TakeDeadLetter();

  /// Pending records across all shards and their mean |residual| (the
  /// refit triggers; the mean replays the canonical merged order), and
  /// lifetime counters.
  [[nodiscard]] size_t pending() const;
  [[nodiscard]] double pending_mean_abs_residual() const;
  [[nodiscard]] uint64_t ingested() const;
  [[nodiscard]] uint64_t rejected() const;
  /// Valid records rejected only because the pending buffer was full.
  [[nodiscard]] uint64_t overflow_dropped() const;
  /// Records ever quarantined / currently parked / dropped because the
  /// dead-letter buffer itself was full.
  [[nodiscard]] uint64_t quarantined() const;
  [[nodiscard]] size_t dead_letter_pending() const;
  [[nodiscard]] uint64_t dead_letter_dropped() const;
  [[nodiscard]] int num_shards() const {
    return static_cast<int>(shards_.size());
  }

 private:
  /// One accepted record plus the residual it was scored with (kept so
  /// Drain can replay the summary without re-predicting).
  struct PendingRecord {
    MixObservation observation;
    double abs_residual = 0.0;
  };
  /// Padded so producers on different shards never share a line.
  struct alignas(kCacheLineSize) Shard {
    mutable Mutex mutex;
    std::vector<PendingRecord> records GUARDED_BY(mutex);
  };

  /// The calling thread's stable shard index.
  [[nodiscard]] int ThreadShard() const;

  const PredictionService* const service_;
  const Options options_;

  /// Built once in the constructor, immutable afterwards (only the
  /// pointees' guarded interiors mutate).
  std::vector<std::unique_ptr<Shard>> shards_;  // contender-lint: lock-free
  /// Capacity gate: total records currently buffered across shards.
  std::atomic<size_t> total_pending_{0};
  std::atomic<uint64_t> ingested_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> overflow_dropped_{0};

  mutable Mutex dead_letter_mutex_;
  std::vector<MixObservation> dead_letter_ GUARDED_BY(dead_letter_mutex_);
  uint64_t quarantined_ GUARDED_BY(dead_letter_mutex_) = 0;
  uint64_t dead_letter_dropped_ GUARDED_BY(dead_letter_mutex_) = 0;
};

}  // namespace contender::serve

#endif  // CONTENDER_SERVE_OBSERVATION_LOG_H_

// Streaming ingest of observed concurrent latencies. Each record is a
// MixObservation — (template, mix, MPL, observed latency) — validated and
// scored against the *live* snapshot at ingest time: the observation's
// continuum point (Eq. 6, against the template's [l_min, l_max] range at
// its MPL) minus the snapshot's predicted continuum point is the residual
// the RefitController's drift trigger watches. Records accumulate in a
// pending buffer until the controller drains them into the training set.
//
// Determinism: the residual is a pure function of (observation, snapshot),
// and pending records are drained in ingest order — so replaying the same
// observation stream against the same snapshot sequence reproduces the
// log state bit-exactly.
//
// Failure handling: each accepted residual also feeds the service's
// HealthTracker (when one is attached), records rejected because the
// pending buffer is full are counted in overflow_dropped(), and batches a
// refit abandoned are quarantined into a bounded dead-letter buffer
// (Quarantine/TakeDeadLetter) instead of silently re-entering training.

#ifndef CONTENDER_SERVE_OBSERVATION_LOG_H_
#define CONTENDER_SERVE_OBSERVATION_LOG_H_

#include <cstdint>
#include <mutex>
#include <vector>

#include "core/template_profile.h"
#include "serve/service.h"
#include "util/statusor.h"
#include "util/summary_stats.h"

namespace contender::serve {

/// What Ingest computed for one accepted record.
struct IngestResult {
  /// Observed minus predicted continuum point (signed; relative latency
  /// error when the snapshot has no spoiler range at the record's MPL).
  double continuum_residual = 0.0;
  /// Version of the snapshot the residual was computed against.
  uint64_t snapshot_version = 0;
};

/// One drained refit batch.
struct ObservationBatch {
  /// The pending records, in ingest order.
  std::vector<MixObservation> observations;
  /// Mean |continuum_residual| over those records (0 when empty).
  double mean_abs_residual = 0.0;
};

/// Thread-safe streaming log of latency observations for one service.
class ObservationLog {
 public:
  struct Options {
    /// Pending-buffer bound; Ingest rejects past it with ResourceExhausted
    /// (the controller is not draining — dropping silently would skew the
    /// refit toward old data).
    size_t pending_capacity = 65536;
    /// Dead-letter-buffer bound; Quarantine drops (and counts) past it.
    size_t dead_letter_capacity = 1024;
  };

  /// `service` must outlive the log.
  explicit ObservationLog(const PredictionService* service);
  ObservationLog(const PredictionService* service, const Options& options);

  ObservationLog(const ObservationLog&) = delete;
  ObservationLog& operator=(const ObservationLog&) = delete;

  /// Validates and appends one record. InvalidArgument for out-of-range
  /// indices, an MPL that does not match the mix size, or a non-positive
  /// latency; ResourceExhausted when the pending buffer is full.
  StatusOr<IngestResult> Ingest(const MixObservation& observation);

  /// Removes and returns every pending record with its residual summary.
  ObservationBatch Drain();

  /// Parks records whose refit failed in the bounded dead-letter buffer
  /// (they are suspected of poisoning the fit, so they must NOT rejoin
  /// the training set automatically). Past dead_letter_capacity the
  /// oldest survivors stay and the excess is dropped and counted.
  void Quarantine(std::vector<MixObservation> observations);

  /// Removes and returns the dead-letter buffer (for offline forensics).
  [[nodiscard]] std::vector<MixObservation> TakeDeadLetter();

  /// Pending records and their mean |residual| (the refit triggers), and
  /// lifetime counters.
  [[nodiscard]] size_t pending() const;
  [[nodiscard]] double pending_mean_abs_residual() const;
  [[nodiscard]] uint64_t ingested() const;
  [[nodiscard]] uint64_t rejected() const;
  /// Valid records rejected only because the pending buffer was full.
  [[nodiscard]] uint64_t overflow_dropped() const;
  /// Records ever quarantined / currently parked / dropped because the
  /// dead-letter buffer itself was full.
  [[nodiscard]] uint64_t quarantined() const;
  [[nodiscard]] size_t dead_letter_pending() const;
  [[nodiscard]] uint64_t dead_letter_dropped() const;

 private:
  const PredictionService* service_;
  Options options_;

  mutable std::mutex mutex_;
  std::vector<MixObservation> pending_;
  std::vector<MixObservation> dead_letter_;
  SummaryStats pending_abs_residuals_;
  uint64_t ingested_ = 0;
  uint64_t rejected_ = 0;
  uint64_t overflow_dropped_ = 0;
  uint64_t quarantined_ = 0;
  uint64_t dead_letter_dropped_ = 0;
};

}  // namespace contender::serve

#endif  // CONTENDER_SERVE_OBSERVATION_LOG_H_

// Model-health tracking and the graceful-degradation ladder.
//
// Contender's continuum residual (PAPER.md §5: observed minus predicted
// continuum point, scored by ObservationLog at ingest) is a per-template
// health signal: a template whose residuals drift is a template whose QS
// model has gone stale. This module turns that signal into a per-template
// circuit breaker and names the ladder of fallbacks the serving path
// descends when a model cannot be trusted:
//
//   tier 0  kFullModel          the template's own QS reference model
//   tier 1  kTransferredQs      QS coefficients transferred from the
//                               healthy reference templates, continuum
//                               upper bound from the KNN spoiler predictor
//                               (paper §6 — the "new template" path, reused
//                               here as the degraded path for a known
//                               template whose own model is quarantined)
//   tier 2  kIsolatedHeuristic  the measured isolated latency l_min (the
//                               continuum lower bound; measured, so it
//                               cannot go stale with the models)
//
// Every answer is stamped with the tier that produced it
// (serve::PredictResult::tier), so degraded answers are auditable.
//
// Breaker state machine (deterministic, driven only by recorded
// residuals — no wall clock, so chaos replays are bit-reproducible):
//
//           mean |residual| over window > threshold
//   Closed ──────────────────────────────────────────▶ Open
//     ▲                                                 │ next
//     │ half_open_probes consecutive                    │ open_cooldown
//     │ healthy residuals                               │ records observed
//     │                 one unhealthy residual          ▼
//     └───────────────── Half-open ◀────────────────────┘
//                            │ (unhealthy → back to Open, trips++)
//
// While Open, serving skips tier 0 for that template and the scheduler
// (sched::TemplateHealth) drops to shortest-isolated ordering. Half-open
// lets full-model answers through again (the probe) while the tracker
// watches whether residuals recovered.

#ifndef CONTENDER_SERVE_HEALTH_H_
#define CONTENDER_SERVE_HEALTH_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "sched/mix_oracle.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace contender::serve {

/// Which rung of the fallback ladder produced an answer (see file comment).
enum class DegradationTier {
  kFullModel = 0,
  kTransferredQs = 1,
  kIsolatedHeuristic = 2,
};

const char* DegradationTierName(DegradationTier tier);

/// The three breaker states (see the state machine above).
enum class BreakerState { kClosed, kOpen, kHalfOpen };

const char* BreakerStateName(BreakerState state);

struct BreakerOptions {
  /// A rolling-mean |continuum residual| above this is unhealthy.
  double error_threshold = 0.25;
  /// Rolling-window size for the closed-state mean.
  size_t window = 16;
  /// Minimum residuals in the window before the breaker may trip (one
  /// noisy record cannot open it).
  size_t min_samples = 4;
  /// Records observed while open before probing (open -> half-open).
  size_t open_cooldown = 8;
  /// Consecutive healthy residuals in half-open required to close.
  size_t half_open_probes = 3;
};

/// One template's breaker. Not thread-safe; HealthTracker serializes.
class CircuitBreaker {
 public:
  explicit CircuitBreaker(const BreakerOptions& options);

  /// Feeds one |continuum residual| and advances the state machine.
  void Record(double abs_residual);

  [[nodiscard]] BreakerState state() const { return state_; }
  /// Transitions into Open (from closed or half-open).
  [[nodiscard]] uint64_t trips() const { return trips_; }

 private:
  void TripOpen();

  BreakerOptions options_;
  BreakerState state_ = BreakerState::kClosed;
  std::vector<double> window_;  // ring buffer of recent |residuals|
  size_t window_next_ = 0;
  size_t window_count_ = 0;
  double window_sum_ = 0.0;
  size_t cooldown_seen_ = 0;
  size_t half_open_ok_ = 0;
  uint64_t trips_ = 0;
};

/// Thread-safe per-template breaker bank for one workload. Implements
/// sched::TemplateHealth so an oracle/policy stack can consume the same
/// signal the serving ladder does.
class HealthTracker final : public sched::TemplateHealth {
 public:
  explicit HealthTracker(int num_templates,
                         const BreakerOptions& options = {});

  /// Feeds template `template_index`'s breaker (ObservationLog calls this
  /// with each accepted record's |continuum residual|).
  void Record(int template_index, double abs_residual);

  /// Lock-free: reads the published per-template state, not the breaker
  /// itself. The serving hot path calls this per prediction, so it must
  /// never contend with Record's state-machine mutex; Record republishes
  /// after every transition. A reader may observe a state at most one
  /// in-flight Record stale — indistinguishable from the prediction
  /// having raced the record the other way.
  [[nodiscard]] BreakerState state(int template_index) const;
  /// sched::TemplateHealth: open breaker == degraded.
  [[nodiscard]] bool Degraded(int template_index) const override;

  /// Total breaker trips across all templates.
  [[nodiscard]] uint64_t trips() const;
  [[nodiscard]] uint64_t records() const;
  /// Template indices whose breakers are currently open (sorted).
  [[nodiscard]] std::vector<int> OpenTemplates() const;
  [[nodiscard]] int num_templates() const;

 private:
  /// Serializes the breaker state machines (the ingest-side write path);
  /// state() never takes it.
  mutable Mutex mutex_;
  std::vector<CircuitBreaker> breakers_ GUARDED_BY(mutex_);
  /// Per-template breaker state mirrored for lock-free readers; written
  /// under mutex_ after each Record, read with acquire by state(). The
  /// vector itself is sized once in the constructor; only the atomic
  /// elements mutate.
  std::vector<std::atomic<uint8_t>> published_;  // contender-lint: lock-free
  uint64_t records_ GUARDED_BY(mutex_) = 0;
};

}  // namespace contender::serve

#endif  // CONTENDER_SERVE_HEALTH_H_

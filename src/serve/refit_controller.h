// The refit control loop closing serving back onto training (paper §6:
// the QS models are cheap enough to maintain incrementally). Each Step():
//
//   1. reads the ObservationLog's pending count and mean |continuum
//      residual|;
//   2. fires when enough new observations accumulated OR the residual
//      drifted past the threshold;
//   3. drains the pending batch into the cumulative training set, refits
//      the per-template QS models of the templates the batch touched on a
//      COPY of the live predictor (serving continues on the old snapshot
//      throughout), and
//   4. atomically hot-swaps the new snapshot into the service.
//
// Deterministic mode is the default: nothing happens except inside an
// explicit Step() call, and a step's outcome is a pure function of (the
// observations ingested so far, the prior steps) — so cold-replaying the
// same ingest/step sequence reproduces every snapshot bit-exactly. The
// optional wall-clock background mode just calls the same Step() on an
// interval for long-lived deployments; per-step behavior is identical.
//
// Failure handling (DESIGN.md §11): the refit runs entirely on a copy, so
// a failing fit can never corrupt the live snapshot. A transient failure
// is retried with seeded-jitter backoff (util/retry.h); once the budget is
// exhausted the batch is quarantined into the log's dead-letter buffer —
// observations that repeatedly break the fit must not silently rejoin the
// training set.

#ifndef CONTENDER_SERVE_REFIT_CONTROLLER_H_
#define CONTENDER_SERVE_REFIT_CONTROLLER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/template_profile.h"
#include "overload/retry_budget.h"
#include "serve/observation_log.h"
#include "serve/service.h"
#include "util/mutex.h"
#include "util/retry.h"
#include "util/statusor.h"
#include "util/thread_annotations.h"

namespace contender::serve {

struct RefitOptions {
  /// Count trigger: refit once this many records are pending.
  size_t min_new_observations = 24;
  /// Drift trigger: refit when the pending records' mean |continuum
  /// residual| exceeds this (with at least `drift_min_observations`
  /// pending, so one noisy record cannot force a refit).
  double residual_threshold = 0.10;
  size_t drift_min_observations = 4;
  /// Per-snapshot oracle memo sizing for refit snapshots.
  sched::MixOracle::Options oracle_options;
  /// Retry budget for one triggered refit: a transiently failing fit is
  /// retried with seeded-jitter backoff until attempts or deadline run
  /// out (util/retry.h). Defaults keep a step bounded at a few seconds.
  RetryOptions refit_retry;
  /// Seed for the backoff jitter (combined with the step index, so each
  /// step's schedule differs but the whole run replays bit-exactly).
  uint64_t retry_jitter_seed = 0xC0117E17DE5ULL;
  /// Time source for backoff sleeps; null selects Clock::System(). Tests
  /// inject a FakeClock so retry paths run instantly.
  Clock* clock = nullptr;
  /// Optional shared retry budget (overload/retry_budget.h): when set,
  /// every refit retry must win a token under `retry_budget_key`, so a
  /// chaos-induced failure burst cannot amplify into a retry storm — a
  /// dry budget stops the step immediately (no backoff sleep) and the
  /// batch goes to the dead-letter buffer exactly as on exhausted
  /// attempts. Null = unbudgeted (plain RetryWithBackoff).
  overload::RetryBudget* retry_budget = nullptr;
  int retry_budget_key = 0;
};

/// What one Step() did.
struct RefitStep {
  /// Why the step fired (or "none" when it did not).
  enum class Trigger { kNone, kCount, kDrift };
  Trigger trigger = Trigger::kNone;
  bool refit = false;
  /// Version of the snapshot published by this step (0 when !refit).
  uint64_t published_version = 0;
  /// Pending records consumed into the training set.
  size_t observations_consumed = 0;
  /// Templates whose QS models were refit (sorted, deduplicated).
  std::vector<int> refit_templates;
};

/// Drives refits for one (service, log) pair.
class RefitController {
 public:
  /// `base_observations` is the training set the live snapshot's models
  /// were fit on; streamed batches are appended to it. `service` and `log`
  /// must outlive the controller.
  RefitController(PredictionService* service, ObservationLog* log,
                  std::vector<MixObservation> base_observations,
                  const RefitOptions& options = {});
  ~RefitController();

  RefitController(const RefitController&) = delete;
  RefitController& operator=(const RefitController&) = delete;

  /// One deterministic control step (see file comment). Thread-safe; steps
  /// serialize. A failing fit is retried with seeded-jitter backoff under
  /// `options_.refit_retry`; a non-OK status means the whole budget was
  /// exhausted (or the failure was non-retryable) — the old snapshot stays
  /// live, nothing partial is ever published, and the drained batch is
  /// quarantined into the log's dead-letter buffer instead of joining the
  /// training set (it is suspected of poisoning the fit).
  StatusOr<RefitStep> Step();

  /// Wall-clock mode: calls Step() every `interval` on a background thread
  /// until Stop() (or destruction). Failed steps are logged and skipped.
  void StartBackground(std::chrono::milliseconds interval);
  void Stop();

  /// Completed refits (snapshots published by this controller).
  [[nodiscard]] uint64_t refits() const {
    return refits_.load(std::memory_order_relaxed);
  }
  /// Triggered steps whose refit exhausted the retry budget (their
  /// batches are in the log's dead-letter buffer).
  [[nodiscard]] uint64_t failed_steps() const {
    return failed_steps_.load(std::memory_order_relaxed);
  }
  /// Observations in the cumulative training set (base + consumed).
  [[nodiscard]] size_t training_set_size() const;

 private:
  PredictionService* const service_;
  ObservationLog* const log_;
  const RefitOptions options_;

  mutable Mutex step_mutex_;  // serializes Step()
  /// Cumulative training set: base + successfully refit batches.
  std::vector<MixObservation> observations_ GUARDED_BY(step_mutex_);
  uint64_t triggered_steps_ GUARDED_BY(step_mutex_) = 0;
  std::atomic<uint64_t> refits_{0};
  std::atomic<uint64_t> failed_steps_{0};

  Mutex background_mutex_;
  CondVar background_wake_;
  std::thread background_ GUARDED_BY(background_mutex_);
  bool stop_requested_ GUARDED_BY(background_mutex_) = false;
};

}  // namespace contender::serve

#endif  // CONTENDER_SERVE_REFIT_CONTROLLER_H_

// An immutable, shareable unit of serving state: one trained
// ContenderPredictor plus a per-snapshot sched::MixOracle memo, stamped
// with a monotonically increasing version. Snapshots are created on the
// heap via Create() and only ever handed out as shared_ptr<const>, so a
// reader that loaded a snapshot keeps it alive across any number of
// hot-swaps — the swap protocol (serve::PredictionService) never blocks or
// invalidates in-flight readers, and a snapshot is destroyed exactly when
// the last reader drops it.
//
// Two read paths, bit-identical by construction:
//   * PredictInMix() — lock-free (pure function of the snapshot), the
//     serving hot path; delegates to sched::PredictInMixUncached.
//   * oracle() — the per-snapshot bounded-LRU memo, for scheduler-style
//     consumers that re-evaluate the same (template, mix) pairs densely.

#ifndef CONTENDER_SERVE_MODEL_SNAPSHOT_H_
#define CONTENDER_SERVE_MODEL_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/predictor.h"
#include "sched/mix_oracle.h"
#include "serve/health.h"
#include "util/units.h"

namespace contender::serve {

/// One answer from the degradation ladder: the latency plus the tier that
/// produced it (serve/health.h documents the ladder).
struct TieredPrediction {
  units::Seconds latency;
  DegradationTier tier = DegradationTier::kFullModel;
};

/// Immutable (predictor, oracle, version) triple. Non-copyable and
/// non-movable: the oracle holds a pointer to the predictor member, so the
/// object must stay put — which shared_ptr ownership guarantees.
class ModelSnapshot {
 public:
  /// Wraps a trained predictor into version `version`. `oracle_options`
  /// sizes the per-snapshot memo.
  static std::shared_ptr<const ModelSnapshot> Create(
      ContenderPredictor predictor, uint64_t version,
      const sched::MixOracle::Options& oracle_options = {});

  ModelSnapshot(const ModelSnapshot&) = delete;
  ModelSnapshot& operator=(const ModelSnapshot&) = delete;

  /// Lock-free canonicalized in-mix prediction with isolated-latency
  /// fallback — the same pure function the oracle memoizes.
  [[nodiscard]] units::Seconds PredictInMix(
      int template_index, const std::vector<int>& concurrent) const {
    return sched::PredictInMixUncached(predictor_, template_index,
                                       concurrent);
  }

  /// The degradation ladder (serve/health.h): full QS model →
  /// transferred-QS via the KNN spoiler (paper §6's new-template path) →
  /// isolated latency, stamping the tier that answered. Pass
  /// `allow_full_model = false` when the template's circuit breaker is
  /// open to start the descent at tier 1. With the full model allowed, no
  /// open breaker and no armed fail points, the answer is bit-identical to
  /// PredictInMix (same canonicalized pure function). Lock-free except for
  /// the fail-point probes ("serve.snapshot.qs_model",
  /// "serve.snapshot.transfer" — a fired probe forces the descent past
  /// that tier).
  [[nodiscard]] TieredPrediction PredictInMixTiered(
      int template_index, const std::vector<int>& concurrent,
      bool allow_full_model = true) const;

  /// l_min of a known template.
  [[nodiscard]] units::Seconds IsolatedLatency(int template_index) const;

  [[nodiscard]] const ContenderPredictor& predictor() const {
    return predictor_;
  }
  /// The per-snapshot memo (thread-safe; shares the snapshot's lifetime).
  [[nodiscard]] const sched::MixOracle& oracle() const { return *oracle_; }
  [[nodiscard]] uint64_t version() const { return version_; }
  [[nodiscard]] int num_templates() const {
    return static_cast<int>(predictor_.profiles().size());
  }

 private:
  ModelSnapshot(ContenderPredictor predictor, uint64_t version,
                const sched::MixOracle::Options& oracle_options);

  ContenderPredictor predictor_;
  std::unique_ptr<sched::MixOracle> oracle_;  // points at predictor_
  uint64_t version_ = 0;
};

}  // namespace contender::serve

#endif  // CONTENDER_SERVE_MODEL_SNAPSHOT_H_

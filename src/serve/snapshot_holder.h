// The lock-free home of the currently-served ModelSnapshot.
//
// Read side (Acquire): an epoch reader registration (util/epoch.h) plus
// a bounded-spin seqlock read (util/seqlock.h) of the {snapshot pointer,
// version} pair — no mutex, no shared_ptr refcount bump, no shared
// cache line written besides the reader's own padded epoch slot. The
// returned View pins the snapshot for its lifetime: any snapshot the
// view can point at is either still current or parked in the epoch
// domain's retired list until this reader (and every other) moves past
// its epoch.
//
// Write side (Publish): serialized by a mutex — the designated writer
// seam; nothing on the read path ever touches it — which (1) rewrites
// the seqlock pair, (2) retires the displaced snapshot into the epoch
// domain, advancing the epoch and reclaiming whatever no reader can
// still see. shared() hands out a classic shared_ptr copy for cold-path
// consumers (refit, tests, anyone who wants to hold a snapshot across
// arbitrary code); handles taken there keep a snapshot alive past
// reclamation exactly as before.
//
// Degradations, never failures: a saturated epoch domain (more than
// kNumSlots simultaneous readers) or a seqlock read that keeps losing to
// writers falls back to the shared() slow path — correctness identical,
// just a mutex-priced read. DESIGN.md §12 is the full memory-model
// writeup.

#ifndef CONTENDER_SERVE_SNAPSHOT_HOLDER_H_
#define CONTENDER_SERVE_SNAPSHOT_HOLDER_H_

#include <cstdint>
#include <memory>

#include "serve/model_snapshot.h"
#include "util/epoch.h"
#include "util/mutex.h"
#include "util/seqlock.h"
#include "util/thread_annotations.h"

namespace contender::serve {

class SnapshotHolder {
 public:
  /// `initial` must be non-null.
  explicit SnapshotHolder(std::shared_ptr<const ModelSnapshot> initial);
  ~SnapshotHolder();

  SnapshotHolder(const SnapshotHolder&) = delete;
  SnapshotHolder& operator=(const SnapshotHolder&) = delete;

  /// A pinned, lock-free read of the current snapshot. Valid for the
  /// view's lifetime; cheap enough to take per request. Not for keeping:
  /// holding a view parks every subsequently displaced snapshot, so
  /// long-lived consumers should use shared() instead.
  class View {
   public:
    View(const View&) = delete;
    View& operator=(const View&) = delete;

    [[nodiscard]] const ModelSnapshot* get() const { return snapshot_; }
    const ModelSnapshot& operator*() const { return *snapshot_; }
    const ModelSnapshot* operator->() const { return snapshot_; }
    /// Version of the pinned snapshot (consistent with get() by seqlock
    /// construction, not by a second read).
    [[nodiscard]] uint64_t version() const { return version_; }
    /// This reader's epoch slot: a contention-free stripe index for
    /// reader-side statistics. -1 on the fallback path (folded by
    /// ShardedCounter::Add).
    [[nodiscard]] int stats_slot() const { return guard_.slot(); }
    /// True when the lock-free fast path served this view (exposed so
    /// tests can assert the fast path actually engages).
    [[nodiscard]] bool lock_free() const { return fallback_ == nullptr; }

   private:
    friend class SnapshotHolder;
    explicit View(const SnapshotHolder* holder);

    EpochDomain::ReaderGuard guard_;
    const ModelSnapshot* snapshot_ = nullptr;
    uint64_t version_ = 0;
    /// Engaged only on the slow path; pins the snapshot by refcount.
    std::shared_ptr<const ModelSnapshot> fallback_;
  };

  [[nodiscard]] View Acquire() const { return View(this); }

  /// Cold-path handle: a shared_ptr copy taken under the writer seam.
  [[nodiscard]] std::shared_ptr<const ModelSnapshot> shared() const;

  /// Writer seam: publishes `next` (non-null) and retires the displaced
  /// snapshot. Readers in flight finish on whichever snapshot they
  /// pinned; new readers see `next`.
  void Publish(std::shared_ptr<const ModelSnapshot> next);

  /// Snapshots retired but still pinned by some reader's epoch.
  [[nodiscard]] size_t retired_pending() const {
    return epochs_.retired_pending();
  }

 private:
  /// The seqlock payload: the raw pointer and its version, published and
  /// read as one unit so a version stamp can never drift from the
  /// snapshot that answered.
  struct Ref {
    const ModelSnapshot* snapshot = nullptr;
    uint64_t version = 0;
  };

  /// Spin budget per lock-free read probe; a publish's write section is
  /// a handful of stores, so losing this many probes in a row means
  /// pathological writer churn and the view degrades to shared().
  static constexpr int kReadSpins = 128;

  /// Read path: seqlock + epoch domain only, never a lock.
  Seqlock<Ref> ref_;                // contender-lint: lock-free
  mutable EpochDomain epochs_;      // contender-lint: lock-free
  mutable Mutex writer_mutex_;  // contender-lint: writer-seam
  std::shared_ptr<const ModelSnapshot> current_ GUARDED_BY(writer_mutex_);
};

}  // namespace contender::serve

#endif  // CONTENDER_SERVE_SNAPSHOT_HOLDER_H_

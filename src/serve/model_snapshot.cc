#include "serve/model_snapshot.h"

#include <utility>

#include "util/logging.h"

namespace contender::serve {

ModelSnapshot::ModelSnapshot(ContenderPredictor predictor, uint64_t version,
                             const sched::MixOracle::Options& oracle_options)
    : predictor_(std::move(predictor)),
      oracle_(std::make_unique<sched::MixOracle>(&predictor_,
                                                 oracle_options)),
      version_(version) {}

std::shared_ptr<const ModelSnapshot> ModelSnapshot::Create(
    ContenderPredictor predictor, uint64_t version,
    const sched::MixOracle::Options& oracle_options) {
  // Not make_shared: the constructor is private, and a plain `new` keeps
  // the control block separate so a stray weak_ptr cannot pin the (large)
  // predictor after the last strong reference dies.
  return std::shared_ptr<const ModelSnapshot>(
      new ModelSnapshot(std::move(predictor), version, oracle_options));
}

units::Seconds ModelSnapshot::IsolatedLatency(int template_index) const {
  const auto& profiles = predictor_.profiles();
  CONTENDER_CHECK(template_index >= 0 &&
                  static_cast<size_t>(template_index) < profiles.size())
      << "ModelSnapshot: unknown template index " << template_index;
  return profiles[static_cast<size_t>(template_index)].isolated_latency;
}

}  // namespace contender::serve

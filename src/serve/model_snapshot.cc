#include "serve/model_snapshot.h"

#include <algorithm>
#include <utility>

#include "util/failpoint.h"
#include "util/logging.h"

namespace contender::serve {

namespace {

// Chaos sites: a fire forces the ladder past the corresponding tier, as if
// the tier's model had failed.
auto& kQsModelFailPoint = CONTENDER_DEFINE_FAILPOINT("serve.snapshot.qs_model");
auto& kTransferFailPoint =
    CONTENDER_DEFINE_FAILPOINT("serve.snapshot.transfer");

}  // namespace

ModelSnapshot::ModelSnapshot(ContenderPredictor predictor, uint64_t version,
                             const sched::MixOracle::Options& oracle_options)
    : predictor_(std::move(predictor)),
      oracle_(std::make_unique<sched::MixOracle>(&predictor_,
                                                 oracle_options)),
      version_(version) {}

std::shared_ptr<const ModelSnapshot> ModelSnapshot::Create(
    ContenderPredictor predictor, uint64_t version,
    const sched::MixOracle::Options& oracle_options) {
  // Not make_shared: the constructor is private, and a plain `new` keeps
  // the control block separate so a stray weak_ptr cannot pin the (large)
  // predictor after the last strong reference dies.
  return std::shared_ptr<const ModelSnapshot>(
      new ModelSnapshot(std::move(predictor), version, oracle_options));
}

TieredPrediction ModelSnapshot::PredictInMixTiered(
    int template_index, const std::vector<int>& concurrent,
    bool allow_full_model) const {
  const auto& profiles = predictor_.profiles();
  CONTENDER_CHECK(template_index >= 0 &&
                  static_cast<size_t>(template_index) < profiles.size())
      << "ModelSnapshot: unknown template index " << template_index;
  const TemplateProfile& profile =
      profiles[static_cast<size_t>(template_index)];
  // An empty mix is MPL 1: the isolated latency IS the model's answer, not
  // a degradation — short-circuit before any fail-point probe so disarmed
  // and armed runs agree on empty mixes.
  if (concurrent.empty()) {
    return {profile.isolated_latency, DegradationTier::kFullModel};
  }
  // Canonical (sorted) mix once, shared by every tier — the same
  // canonicalization PredictInMixUncached applies, so tier 0 is
  // bit-identical to PredictInMix by construction.
  std::vector<int> canonical = concurrent;
  std::sort(canonical.begin(), canonical.end());

  if (allow_full_model && !kQsModelFailPoint.ShouldFail()) {
    auto full = predictor_.PredictKnown(template_index, canonical);
    if (full.ok()) return {*full, DegradationTier::kFullModel};
  }
  if (!kTransferFailPoint.ShouldFail()) {
    auto transferred = predictor_.PredictNew(profile, canonical,
                                             SpoilerSource::kKnnPredicted);
    if (transferred.ok()) {
      return {*transferred, DegradationTier::kTransferredQs};
    }
  }
  return {profile.isolated_latency, DegradationTier::kIsolatedHeuristic};
}

units::Seconds ModelSnapshot::IsolatedLatency(int template_index) const {
  const auto& profiles = predictor_.profiles();
  CONTENDER_CHECK(template_index >= 0 &&
                  static_cast<size_t>(template_index) < profiles.size())
      << "ModelSnapshot: unknown template index " << template_index;
  return profiles[static_cast<size_t>(template_index)].isolated_latency;
}

}  // namespace contender::serve

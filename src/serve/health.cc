#include "serve/health.h"

#include "util/logging.h"

namespace contender::serve {

const char* DegradationTierName(DegradationTier tier) {
  switch (tier) {
    case DegradationTier::kFullModel:
      return "full-model";
    case DegradationTier::kTransferredQs:
      return "transferred-qs";
    case DegradationTier::kIsolatedHeuristic:
      return "isolated-heuristic";
  }
  return "unknown";
}

const char* BreakerStateName(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half-open";
  }
  return "unknown";
}

CircuitBreaker::CircuitBreaker(const BreakerOptions& options)
    : options_(options) {
  CONTENDER_CHECK(options_.window >= 1 && options_.min_samples >= 1)
      << "CircuitBreaker: window and min_samples must be >= 1";
  CONTENDER_CHECK(options_.half_open_probes >= 1)
      << "CircuitBreaker: half_open_probes must be >= 1";
  window_.assign(options_.window, 0.0);
}

void CircuitBreaker::TripOpen() {
  state_ = BreakerState::kOpen;
  ++trips_;
  cooldown_seen_ = 0;
  // Forget the poisoned window: when the breaker eventually closes it
  // starts judging the model afresh.
  window_count_ = 0;
  window_next_ = 0;
  window_sum_ = 0.0;
}

void CircuitBreaker::Record(double abs_residual) {
  switch (state_) {
    case BreakerState::kClosed: {
      if (window_count_ == options_.window) {
        window_sum_ -= window_[window_next_];
      } else {
        ++window_count_;
      }
      window_[window_next_] = abs_residual;
      window_next_ = (window_next_ + 1) % options_.window;
      window_sum_ += abs_residual;
      const double mean = window_sum_ / static_cast<double>(window_count_);
      if (window_count_ >= options_.min_samples &&
          mean > options_.error_threshold) {
        TripOpen();
      }
      break;
    }
    case BreakerState::kOpen:
      if (++cooldown_seen_ >= options_.open_cooldown) {
        state_ = BreakerState::kHalfOpen;
        half_open_ok_ = 0;
      }
      break;
    case BreakerState::kHalfOpen:
      if (abs_residual <= options_.error_threshold) {
        if (++half_open_ok_ >= options_.half_open_probes) {
          state_ = BreakerState::kClosed;
        }
      } else {
        TripOpen();
      }
      break;
  }
}

HealthTracker::HealthTracker(int num_templates, const BreakerOptions& options)
    : breakers_(static_cast<size_t>(num_templates), CircuitBreaker(options)),
      published_(static_cast<size_t>(num_templates)) {
  CONTENDER_CHECK(num_templates >= 1)
      << "HealthTracker: num_templates must be >= 1";
  for (std::atomic<uint8_t>& s : published_) {
    s.store(static_cast<uint8_t>(BreakerState::kClosed),
            std::memory_order_relaxed);
  }
}

void HealthTracker::Record(int template_index, double abs_residual) {
  MutexLock lock(&mutex_);
  CONTENDER_CHECK(template_index >= 0 &&
                  static_cast<size_t>(template_index) < breakers_.size())
      << "HealthTracker: unknown template index " << template_index;
  CircuitBreaker& breaker = breakers_[static_cast<size_t>(template_index)];
  breaker.Record(abs_residual);
  // Republish so lock-free readers see the post-transition state.
  published_[static_cast<size_t>(template_index)].store(
      static_cast<uint8_t>(breaker.state()), std::memory_order_release);
  ++records_;
}

BreakerState HealthTracker::state(int template_index) const {
  CONTENDER_CHECK(template_index >= 0 &&
                  static_cast<size_t>(template_index) < published_.size())
      << "HealthTracker: unknown template index " << template_index;
  return static_cast<BreakerState>(
      published_[static_cast<size_t>(template_index)].load(
          std::memory_order_acquire));
}

bool HealthTracker::Degraded(int template_index) const {
  return state(template_index) == BreakerState::kOpen;
}

uint64_t HealthTracker::trips() const {
  MutexLock lock(&mutex_);
  uint64_t total = 0;
  for (const CircuitBreaker& b : breakers_) total += b.trips();
  return total;
}

uint64_t HealthTracker::records() const {
  MutexLock lock(&mutex_);
  return records_;
}

std::vector<int> HealthTracker::OpenTemplates() const {
  MutexLock lock(&mutex_);
  std::vector<int> open;
  for (size_t i = 0; i < breakers_.size(); ++i) {
    if (breakers_[i].state() == BreakerState::kOpen) {
      open.push_back(static_cast<int>(i));
    }
  }
  return open;
}

int HealthTracker::num_templates() const {
  MutexLock lock(&mutex_);
  return static_cast<int>(breakers_.size());
}

}  // namespace contender::serve

// The concurrent prediction front-end: a long-lived service that owns the
// *current* ModelSnapshot behind a mutex-guarded shared_ptr, serves
// single predictions off whatever snapshot a reader loads, and fans
// batched requests across a util::ThreadPool.
//
// Swap protocol: Publish() replaces the current snapshot under a mutex
// whose critical section is one pointer swap — it is never held while a
// model is refit, trained, or even evaluated, so serving never pauses.
// Readers hold the same mutex only long enough to copy the shared_ptr;
// all prediction work happens on their private handle afterwards.
// Readers that already loaded the old snapshot finish on it (shared_ptr
// keeps it alive); readers that load after the swap see the new one.
// There is no torn state — a batch is answered entirely by the single
// snapshot loaded at its start, so every response in one batch is
// mutually consistent and stamped with that snapshot's version.
//
// (std::atomic<std::shared_ptr> would shrink the reader's critical
// section to libstdc++'s internal spinlock, but GCC 12's _Sp_atomic
// parks contended waiters on a futex ThreadSanitizer cannot model, which
// makes every hot-swap test a false positive. A real mutex costs the
// same uncontended atomic op and keeps the concurrency story auditable.)

#ifndef CONTENDER_SERVE_SERVICE_H_
#define CONTENDER_SERVE_SERVICE_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "serve/health.h"
#include "serve/model_snapshot.h"
#include "util/status.h"
#include "util/statusor.h"
#include "util/thread_pool.h"
#include "util/units.h"

namespace contender::serve {

/// One in-mix prediction request: a known template executing beside the
/// given concurrent workload indices (MPL = concurrent.size() + 1).
struct PredictRequest {
  int template_index = -1;
  std::vector<int> concurrent;
};

/// One answer. `status` is non-OK only for malformed requests (indices
/// outside the snapshot's workload); model problems degrade down the
/// fallback ladder instead (serve/health.h), so a valid request always
/// yields a latency.
struct PredictResult {
  Status status;
  units::Seconds latency;
  /// Rung of the degradation ladder that produced `latency`.
  DegradationTier tier = DegradationTier::kFullModel;
  /// Version of the snapshot that answered (for staleness auditing).
  uint64_t snapshot_version = 0;
};

/// Thread-safe prediction service over a hot-swappable model snapshot.
class PredictionService {
 public:
  struct Options {
    /// Pool width for PredictBatch; <= 0 selects hardware concurrency.
    int num_threads = 0;
    /// Batches at or below this size are answered inline (a pool
    /// round-trip costs more than the predictions).
    size_t inline_batch_limit = 16;
    /// Optional model-health signal. When a template's breaker is open,
    /// answers for it start at tier 1 of the degradation ladder
    /// (transferred-QS) instead of its quarantined full model. Null
    /// disables breaker-driven degradation (pre-health behavior).
    std::shared_ptr<HealthTracker> health;
  };

  /// Starts serving `initial` (must be non-null).
  explicit PredictionService(std::shared_ptr<const ModelSnapshot> initial);
  PredictionService(std::shared_ptr<const ModelSnapshot> initial,
                    const Options& options);

  PredictionService(const PredictionService&) = delete;
  PredictionService& operator=(const PredictionService&) = delete;

  /// The snapshot currently being served (a pointer copy under a
  /// micro-lock; callers may hold the result for as long as they like).
  [[nodiscard]] std::shared_ptr<const ModelSnapshot> snapshot() const;

  /// Replaces the served snapshot with one pointer swap. In-flight readers
  /// finish on the snapshot they already loaded; `next` must be non-null.
  void Publish(std::shared_ptr<const ModelSnapshot> next);

  /// One prediction against the current snapshot; no lock is held while
  /// the model evaluates. Non-OK only for out-of-range indices.
  StatusOr<units::Seconds> Predict(int template_index,
                                   const std::vector<int>& concurrent) const;

  /// Like Predict but returns the full result — including which rung of
  /// the degradation ladder answered and the snapshot version.
  [[nodiscard]] PredictResult PredictDetailed(
      int template_index, const std::vector<int>& concurrent) const;

  /// Answers every request against ONE snapshot (loaded once at batch
  /// start), fanning chunks across the pool for large batches. Results are
  /// positionally aligned with `batch` and bit-identical for every pool
  /// width, including inline execution.
  std::vector<PredictResult> PredictBatch(
      const std::vector<PredictRequest>& batch) const;

  /// Total single predictions + batch entries answered.
  [[nodiscard]] uint64_t served() const {
    return served_.load(std::memory_order_relaxed);
  }
  /// Number of Publish() calls (initial snapshot excluded).
  [[nodiscard]] uint64_t publishes() const {
    return publishes_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] int num_threads() const { return pool_.num_threads(); }

  /// The health tracker this service consults (null when none was given).
  [[nodiscard]] const std::shared_ptr<HealthTracker>& health() const {
    return options_.health;
  }
  /// Answers served so far from the given ladder tier.
  [[nodiscard]] uint64_t tier_count(DegradationTier tier) const {
    return tier_counts_[static_cast<size_t>(tier)].load(
        std::memory_order_relaxed);
  }

 private:
  PredictResult PredictOn(const ModelSnapshot& snapshot,
                          const PredictRequest& request) const;

  Options options_;
  /// Guards only the pointer itself; the critical section on both sides
  /// is a shared_ptr copy/swap, never a model evaluation or refit.
  mutable std::mutex snapshot_mutex_;
  std::shared_ptr<const ModelSnapshot> snapshot_;
  mutable std::atomic<uint64_t> served_{0};
  std::atomic<uint64_t> publishes_{0};
  /// Valid answers per DegradationTier (indexed by the enum's value).
  mutable std::array<std::atomic<uint64_t>, 3> tier_counts_{};
  mutable ThreadPool pool_;
};

}  // namespace contender::serve

#endif  // CONTENDER_SERVE_SERVICE_H_

// The concurrent prediction front-end: a long-lived service that owns
// the *current* ModelSnapshot inside a lock-free SnapshotHolder, serves
// predictions off an epoch-pinned view of it, and fans batched requests
// across a util::ThreadPool.
//
// Read path: Predict/PredictDetailed/PredictBatch acquire a
// SnapshotHolder::View — an epoch registration plus a bounded-spin
// seqlock read (DESIGN.md §12); no mutex, no refcount bump, no shared
// line written except the reader's own padded epoch slot and counter
// stripes. Single-threaded answers are bit-identical to the pre-lock-free
// implementation: the prediction itself is the same pure function of
// (snapshot, request), only the pointer-publication mechanism changed.
//
// Write path: Publish() — the designated writer seam — rewrites the
// seqlock pair under the holder's writer mutex and retires the displaced
// snapshot into the epoch domain. In-flight readers finish on the
// snapshot they pinned; cold-path handles from snapshot() keep versions
// alive arbitrarily long, exactly as before. There is no torn state — a
// batch is answered entirely by the single snapshot pinned at its start,
// and every answer is stamped with that snapshot's version.

#ifndef CONTENDER_SERVE_SERVICE_H_
#define CONTENDER_SERVE_SERVICE_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "serve/health.h"
#include "serve/model_snapshot.h"
#include "serve/snapshot_holder.h"
#include "util/sharded_counter.h"
#include "util/status.h"
#include "util/statusor.h"
#include "util/thread_pool.h"
#include "util/units.h"

namespace contender::serve {

/// One in-mix prediction request: a known template executing beside the
/// given concurrent workload indices (MPL = concurrent.size() + 1).
struct PredictRequest {
  int template_index = -1;
  std::vector<int> concurrent;
};

/// One answer. `status` is non-OK only for malformed requests (indices
/// outside the snapshot's workload); model problems degrade down the
/// fallback ladder instead (serve/health.h), so a valid request always
/// yields a latency.
struct PredictResult {
  Status status;
  units::Seconds latency;
  /// Rung of the degradation ladder that produced `latency`.
  DegradationTier tier = DegradationTier::kFullModel;
  /// Version of the snapshot that answered (for staleness auditing).
  uint64_t snapshot_version = 0;
};

/// Thread-safe prediction service over a hot-swappable model snapshot.
class PredictionService {
 public:
  struct Options {
    /// Pool width for PredictBatch; <= 0 selects hardware concurrency.
    int num_threads = 0;
    /// Batches at or below this size are answered inline (a pool
    /// round-trip costs more than the predictions).
    size_t inline_batch_limit = 16;
    /// Optional model-health signal. When a template's breaker is open,
    /// answers for it start at tier 1 of the degradation ladder
    /// (transferred-QS) instead of its quarantined full model. Null
    /// disables breaker-driven degradation (pre-health behavior).
    std::shared_ptr<HealthTracker> health;
  };

  /// Starts serving `initial` (must be non-null).
  explicit PredictionService(std::shared_ptr<const ModelSnapshot> initial);
  PredictionService(std::shared_ptr<const ModelSnapshot> initial,
                    const Options& options);

  PredictionService(const PredictionService&) = delete;
  PredictionService& operator=(const PredictionService&) = delete;

  /// The snapshot currently being served (a cold-path shared_ptr copy
  /// from the writer seam; callers may hold it as long as they like).
  [[nodiscard]] std::shared_ptr<const ModelSnapshot> snapshot() const;

  /// The lock-free holder itself, for read-side collaborators that want
  /// epoch-pinned views instead of refcounted handles (ObservationLog's
  /// ingest scoring path does).
  [[nodiscard]] const SnapshotHolder& holder() const { return holder_; }

  /// Replaces the served snapshot (the writer seam). In-flight readers
  /// finish on the snapshot they already pinned; `next` must be non-null.
  void Publish(std::shared_ptr<const ModelSnapshot> next);

  /// One prediction against the current snapshot; the entire read path is
  /// lock-free. Non-OK only for out-of-range indices.
  StatusOr<units::Seconds> Predict(int template_index,
                                   const std::vector<int>& concurrent) const;

  /// Like Predict but returns the full result — including which rung of
  /// the degradation ladder answered and the snapshot version.
  [[nodiscard]] PredictResult PredictDetailed(
      int template_index, const std::vector<int>& concurrent) const;

  /// Answers every request against ONE snapshot (pinned once at batch
  /// start), fanning chunks across the pool for large batches. Results are
  /// positionally aligned with `batch` and bit-identical for every pool
  /// width, including inline execution.
  std::vector<PredictResult> PredictBatch(
      const std::vector<PredictRequest>& batch) const;

  /// Total single predictions + batch entries answered.
  [[nodiscard]] uint64_t served() const { return served_.Total(); }
  /// Number of Publish() calls (initial snapshot excluded).
  [[nodiscard]] uint64_t publishes() const {
    return publishes_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] int num_threads() const { return pool_.num_threads(); }

  /// The health tracker this service consults (null when none was given).
  [[nodiscard]] const std::shared_ptr<HealthTracker>& health() const {
    return options_.health;
  }
  /// Answers served so far from the given ladder tier.
  [[nodiscard]] uint64_t tier_count(DegradationTier tier) const {
    return tier_counts_[static_cast<size_t>(tier)].Total();
  }

 private:
  /// Pure evaluation of one request on one snapshot — no counter side
  /// effects, so pool workers can batch their stripe bumps per chunk.
  PredictResult PredictOn(const ModelSnapshot& snapshot,
                          const PredictRequest& request) const;
  /// Folds one chunk's per-tier tallies into the striped counters.
  void AddTierCounts(int stripe, const std::array<uint64_t, 3>& counts) const;

  Options options_;
  SnapshotHolder holder_;
  std::atomic<uint64_t> publishes_{0};
  /// Striped by the reader's epoch slot: bumping them never contends
  /// across serving threads.
  mutable ShardedCounter served_;
  mutable std::array<ShardedCounter, 3> tier_counts_;
  mutable ThreadPool pool_;
};

}  // namespace contender::serve

#endif  // CONTENDER_SERVE_SERVICE_H_

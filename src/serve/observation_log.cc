#include "serve/observation_log.h"

#include <cmath>
#include <utility>

#include "core/continuum.h"
#include "util/failpoint.h"
#include "util/logging.h"

namespace contender::serve {

namespace {

// Chaos site: a fire rejects the (otherwise valid) record as if ingest
// itself had failed, exercising callers' rejection handling.
auto& kIngestFailPoint =
    CONTENDER_DEFINE_FAILPOINT("serve.observation_log.ingest");

}  // namespace

ObservationLog::ObservationLog(const PredictionService* service)
    : ObservationLog(service, Options()) {}

ObservationLog::ObservationLog(const PredictionService* service,
                               const Options& options)
    : service_(service), options_(options) {
  CONTENDER_CHECK(service_ != nullptr);
}

StatusOr<IngestResult> ObservationLog::Ingest(
    const MixObservation& observation) {
  const std::shared_ptr<const ModelSnapshot> snap = service_->snapshot();
  const int n = snap->num_templates();
  auto reject = [this](Status status) -> StatusOr<IngestResult> {
    std::lock_guard<std::mutex> lock(mutex_);
    ++rejected_;
    return status;
  };
  if (observation.primary_index < 0 || observation.primary_index >= n) {
    return reject(
        Status::InvalidArgument("ObservationLog: bad primary index"));
  }
  for (int c : observation.concurrent_indices) {
    if (c < 0 || c >= n) {
      return reject(
          Status::InvalidArgument("ObservationLog: bad concurrent index"));
    }
  }
  if (observation.mpl !=
      static_cast<int>(observation.concurrent_indices.size()) + 1) {
    return reject(Status::InvalidArgument(
        "ObservationLog: mpl must equal concurrent_indices.size() + 1"));
  }
  if (!(observation.latency.value() > 0.0)) {
    return reject(
        Status::InvalidArgument("ObservationLog: latency must be positive"));
  }
  // Probe after validation so chaos runs exercise the failure path for
  // records that would otherwise have been accepted.
  if (kIngestFailPoint.ShouldFail()) {
    return reject(Status::Internal(
        "ObservationLog: injected ingest failure (chaos)"));
  }

  // Residual against the live snapshot: observed vs predicted continuum
  // point on the template's [l_min, l_max] range at this MPL. When the
  // profile carries no spoiler latency there, degrade to the relative
  // latency error so the drift trigger still sees the record.
  IngestResult result;
  result.snapshot_version = snap->version();
  const units::Seconds predicted = snap->PredictInMix(
      observation.primary_index, observation.concurrent_indices);
  const TemplateProfile& profile =
      snap->predictor()
          .profiles()[static_cast<size_t>(observation.primary_index)];
  auto lmax_it = profile.spoiler_latency.find(observation.mpl);
  bool have_range = false;
  if (lmax_it != profile.spoiler_latency.end()) {
    auto range =
        units::LatencyRange::Make(profile.isolated_latency, lmax_it->second);
    if (range.ok()) {
      auto c_obs = ContinuumPoint(observation.latency, *range);
      auto c_pred = ContinuumPoint(predicted, *range);
      if (c_obs.ok() && c_pred.ok()) {
        result.continuum_residual = c_obs->value() - c_pred->value();
        have_range = true;
      }
    }
  }
  if (!have_range) {
    result.continuum_residual =
        (observation.latency - predicted) / predicted;
  }

  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (pending_.size() >= options_.pending_capacity) {
      ++rejected_;
      ++overflow_dropped_;
      return Status::ResourceExhausted(
          "ObservationLog: pending buffer full (controller not draining?)");
    }
    pending_.push_back(observation);
    pending_abs_residuals_.Add(std::abs(result.continuum_residual));
    ++ingested_;
  }
  // Feed the accepted residual to the template's circuit breaker outside
  // the log mutex (the tracker has its own lock; never nest the two).
  if (service_->health() != nullptr) {
    service_->health()->Record(observation.primary_index,
                               std::abs(result.continuum_residual));
  }
  return result;
}

ObservationBatch ObservationLog::Drain() {
  std::lock_guard<std::mutex> lock(mutex_);
  ObservationBatch batch;
  batch.observations = std::move(pending_);
  batch.mean_abs_residual = pending_abs_residuals_.mean();
  pending_.clear();
  pending_abs_residuals_ = SummaryStats();
  return batch;
}

void ObservationLog::Quarantine(std::vector<MixObservation> observations) {
  std::lock_guard<std::mutex> lock(mutex_);
  quarantined_ += observations.size();
  for (MixObservation& obs : observations) {
    if (dead_letter_.size() >= options_.dead_letter_capacity) {
      ++dead_letter_dropped_;
      continue;
    }
    dead_letter_.push_back(std::move(obs));
  }
}

std::vector<MixObservation> ObservationLog::TakeDeadLetter() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<MixObservation> taken = std::move(dead_letter_);
  dead_letter_.clear();
  return taken;
}

size_t ObservationLog::pending() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return pending_.size();
}

double ObservationLog::pending_mean_abs_residual() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return pending_abs_residuals_.mean();
}

uint64_t ObservationLog::ingested() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ingested_;
}

uint64_t ObservationLog::rejected() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return rejected_;
}

uint64_t ObservationLog::overflow_dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return overflow_dropped_;
}

uint64_t ObservationLog::quarantined() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return quarantined_;
}

size_t ObservationLog::dead_letter_pending() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dead_letter_.size();
}

uint64_t ObservationLog::dead_letter_dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dead_letter_dropped_;
}

}  // namespace contender::serve

#include "serve/observation_log.h"

#include <cmath>
#include <utility>

#include "core/continuum.h"
#include "util/logging.h"

namespace contender::serve {

ObservationLog::ObservationLog(const PredictionService* service)
    : ObservationLog(service, Options()) {}

ObservationLog::ObservationLog(const PredictionService* service,
                               const Options& options)
    : service_(service), options_(options) {
  CONTENDER_CHECK(service_ != nullptr);
}

StatusOr<IngestResult> ObservationLog::Ingest(
    const MixObservation& observation) {
  const std::shared_ptr<const ModelSnapshot> snap = service_->snapshot();
  const int n = snap->num_templates();
  auto reject = [this](Status status) -> StatusOr<IngestResult> {
    std::lock_guard<std::mutex> lock(mutex_);
    ++rejected_;
    return status;
  };
  if (observation.primary_index < 0 || observation.primary_index >= n) {
    return reject(
        Status::InvalidArgument("ObservationLog: bad primary index"));
  }
  for (int c : observation.concurrent_indices) {
    if (c < 0 || c >= n) {
      return reject(
          Status::InvalidArgument("ObservationLog: bad concurrent index"));
    }
  }
  if (observation.mpl !=
      static_cast<int>(observation.concurrent_indices.size()) + 1) {
    return reject(Status::InvalidArgument(
        "ObservationLog: mpl must equal concurrent_indices.size() + 1"));
  }
  if (!(observation.latency.value() > 0.0)) {
    return reject(
        Status::InvalidArgument("ObservationLog: latency must be positive"));
  }

  // Residual against the live snapshot: observed vs predicted continuum
  // point on the template's [l_min, l_max] range at this MPL. When the
  // profile carries no spoiler latency there, degrade to the relative
  // latency error so the drift trigger still sees the record.
  IngestResult result;
  result.snapshot_version = snap->version();
  const units::Seconds predicted = snap->PredictInMix(
      observation.primary_index, observation.concurrent_indices);
  const TemplateProfile& profile =
      snap->predictor()
          .profiles()[static_cast<size_t>(observation.primary_index)];
  auto lmax_it = profile.spoiler_latency.find(observation.mpl);
  bool have_range = false;
  if (lmax_it != profile.spoiler_latency.end()) {
    auto range =
        units::LatencyRange::Make(profile.isolated_latency, lmax_it->second);
    if (range.ok()) {
      auto c_obs = ContinuumPoint(observation.latency, *range);
      auto c_pred = ContinuumPoint(predicted, *range);
      if (c_obs.ok() && c_pred.ok()) {
        result.continuum_residual = c_obs->value() - c_pred->value();
        have_range = true;
      }
    }
  }
  if (!have_range) {
    result.continuum_residual =
        (observation.latency - predicted) / predicted;
  }

  std::lock_guard<std::mutex> lock(mutex_);
  if (pending_.size() >= options_.pending_capacity) {
    ++rejected_;
    return Status::ResourceExhausted(
        "ObservationLog: pending buffer full (controller not draining?)");
  }
  pending_.push_back(observation);
  pending_abs_residuals_.Add(std::abs(result.continuum_residual));
  ++ingested_;
  return result;
}

ObservationBatch ObservationLog::Drain() {
  std::lock_guard<std::mutex> lock(mutex_);
  ObservationBatch batch;
  batch.observations = std::move(pending_);
  batch.mean_abs_residual = pending_abs_residuals_.mean();
  pending_.clear();
  pending_abs_residuals_ = SummaryStats();
  return batch;
}

size_t ObservationLog::pending() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return pending_.size();
}

double ObservationLog::pending_mean_abs_residual() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return pending_abs_residuals_.mean();
}

uint64_t ObservationLog::ingested() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ingested_;
}

uint64_t ObservationLog::rejected() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return rejected_;
}

}  // namespace contender::serve

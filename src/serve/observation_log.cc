#include "serve/observation_log.h"

#include <cmath>
#include <utility>

#include "core/continuum.h"
#include "util/failpoint.h"
#include "util/logging.h"

namespace contender::serve {

namespace {

// Chaos site: a fire rejects the (otherwise valid) record as if ingest
// itself had failed, exercising callers' rejection handling.
auto& kIngestFailPoint =
    CONTENDER_DEFINE_FAILPOINT("serve.observation_log.ingest");

// Process-wide thread ordinal: the first thread to ingest anywhere gets
// 0, so a single-threaded program always maps to shard 0 of every log.
int ThreadOrdinal() {
  static std::atomic<int> next_ordinal{0};
  thread_local const int ordinal =
      next_ordinal.fetch_add(1, std::memory_order_relaxed);
  return ordinal;
}

}  // namespace

ObservationLog::ObservationLog(const PredictionService* service)
    : ObservationLog(service, Options()) {}

ObservationLog::ObservationLog(const PredictionService* service,
                               const Options& options)
    : service_(service), options_(options) {
  CONTENDER_CHECK(service_ != nullptr);
  CONTENDER_CHECK(options_.num_shards >= 1)
      << "ObservationLog: num_shards must be >= 1";
  shards_.reserve(static_cast<size_t>(options_.num_shards));
  for (int i = 0; i < options_.num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

int ObservationLog::ThreadShard() const {
  return ThreadOrdinal() % static_cast<int>(shards_.size());
}

StatusOr<IngestResult> ObservationLog::Ingest(
    const MixObservation& observation) {
  return IngestInShard(ThreadShard(), observation);
}

StatusOr<IngestResult> ObservationLog::IngestInShard(
    int shard, const MixObservation& observation) {
  // Epoch-pinned view of the live snapshot: no lock, no refcount bump.
  const SnapshotHolder::View view = service_->holder().Acquire();
  const int n = view->num_templates();
  auto reject = [this](Status status) -> StatusOr<IngestResult> {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return status;
  };
  if (observation.primary_index < 0 || observation.primary_index >= n) {
    return reject(
        Status::InvalidArgument("ObservationLog: bad primary index"));
  }
  for (int c : observation.concurrent_indices) {
    if (c < 0 || c >= n) {
      return reject(
          Status::InvalidArgument("ObservationLog: bad concurrent index"));
    }
  }
  if (observation.mpl !=
      static_cast<int>(observation.concurrent_indices.size()) + 1) {
    return reject(Status::InvalidArgument(
        "ObservationLog: mpl must equal concurrent_indices.size() + 1"));
  }
  if (!(observation.latency.value() > 0.0)) {
    return reject(
        Status::InvalidArgument("ObservationLog: latency must be positive"));
  }
  // Probe after validation so chaos runs exercise the failure path for
  // records that would otherwise have been accepted.
  if (kIngestFailPoint.ShouldFail()) {
    return reject(Status::Internal(
        "ObservationLog: injected ingest failure (chaos)"));
  }

  // Residual against the live snapshot: observed vs predicted continuum
  // point on the template's [l_min, l_max] range at this MPL. When the
  // profile carries no spoiler latency there, degrade to the relative
  // latency error so the drift trigger still sees the record.
  IngestResult result;
  result.snapshot_version = view.version();
  result.shard =
      (shard % static_cast<int>(shards_.size()) +
       static_cast<int>(shards_.size())) %
      static_cast<int>(shards_.size());
  const units::Seconds predicted = view->PredictInMix(
      observation.primary_index, observation.concurrent_indices);
  const TemplateProfile& profile =
      view->predictor()
          .profiles()[static_cast<size_t>(observation.primary_index)];
  auto lmax_it = profile.spoiler_latency.find(observation.mpl);
  bool have_range = false;
  if (lmax_it != profile.spoiler_latency.end()) {
    auto range =
        units::LatencyRange::Make(profile.isolated_latency, lmax_it->second);
    if (range.ok()) {
      auto c_obs = ContinuumPoint(observation.latency, *range);
      auto c_pred = ContinuumPoint(predicted, *range);
      if (c_obs.ok() && c_pred.ok()) {
        result.continuum_residual = c_obs->value() - c_pred->value();
        have_range = true;
      }
    }
  }
  if (!have_range) {
    result.continuum_residual =
        (observation.latency - predicted) / predicted;
  }

  // Reserve a slot against the global capacity before touching the shard;
  // records stored never exceed pending_capacity because only successful
  // reservations proceed.
  if (total_pending_.fetch_add(1, std::memory_order_relaxed) >=
      options_.pending_capacity) {
    total_pending_.fetch_sub(1, std::memory_order_relaxed);
    rejected_.fetch_add(1, std::memory_order_relaxed);
    overflow_dropped_.fetch_add(1, std::memory_order_relaxed);
    return Status::ResourceExhausted(
        "ObservationLog: pending buffer full (controller not draining?)");
  }
  {
    Shard& home = *shards_[static_cast<size_t>(result.shard)];
    MutexLock lock(&home.mutex);
    home.records.push_back(
        {observation, std::abs(result.continuum_residual)});
  }
  ingested_.fetch_add(1, std::memory_order_relaxed);
  // Feed the accepted residual to the template's circuit breaker outside
  // the shard mutex (the tracker has its own lock; never nest the two).
  if (service_->health() != nullptr) {
    service_->health()->Record(observation.primary_index,
                               std::abs(result.continuum_residual));
  }
  return result;
}

ObservationBatch ObservationLog::Drain() {
  // Take each shard's buffer in shard order; replaying the summary over
  // the merged order keeps mean_abs_residual bit-identical to a
  // sequential single-shard run over the same merged stream.
  ObservationBatch batch;
  SummaryStats replay;
  size_t drained = 0;
  for (auto& shard : shards_) {
    std::vector<PendingRecord> taken;
    {
      MutexLock lock(&shard->mutex);
      taken = std::move(shard->records);
      shard->records.clear();
    }
    drained += taken.size();
    for (PendingRecord& record : taken) {
      replay.Add(record.abs_residual);
      batch.observations.push_back(std::move(record.observation));
    }
  }
  total_pending_.fetch_sub(drained, std::memory_order_relaxed);
  batch.mean_abs_residual = replay.mean();
  return batch;
}

void ObservationLog::Quarantine(std::vector<MixObservation> observations) {
  MutexLock lock(&dead_letter_mutex_);
  quarantined_ += observations.size();
  for (MixObservation& obs : observations) {
    if (dead_letter_.size() >= options_.dead_letter_capacity) {
      ++dead_letter_dropped_;
      continue;
    }
    dead_letter_.push_back(std::move(obs));
  }
}

std::vector<MixObservation> ObservationLog::TakeDeadLetter() {
  MutexLock lock(&dead_letter_mutex_);
  std::vector<MixObservation> taken = std::move(dead_letter_);
  dead_letter_.clear();
  return taken;
}

size_t ObservationLog::pending() const {
  return total_pending_.load(std::memory_order_relaxed);
}

double ObservationLog::pending_mean_abs_residual() const {
  // Replay the canonical merged order (quiescent callers — the refit
  // trigger — get exactly the mean Drain would report).
  SummaryStats replay;
  for (const auto& shard : shards_) {
    MutexLock lock(&shard->mutex);
    for (const PendingRecord& record : shard->records) {
      replay.Add(record.abs_residual);
    }
  }
  return replay.mean();
}

uint64_t ObservationLog::ingested() const {
  return ingested_.load(std::memory_order_relaxed);
}

uint64_t ObservationLog::rejected() const {
  return rejected_.load(std::memory_order_relaxed);
}

uint64_t ObservationLog::overflow_dropped() const {
  return overflow_dropped_.load(std::memory_order_relaxed);
}

uint64_t ObservationLog::quarantined() const {
  MutexLock lock(&dead_letter_mutex_);
  return quarantined_;
}

size_t ObservationLog::dead_letter_pending() const {
  MutexLock lock(&dead_letter_mutex_);
  return dead_letter_.size();
}

uint64_t ObservationLog::dead_letter_dropped() const {
  MutexLock lock(&dead_letter_mutex_);
  return dead_letter_dropped_;
}

}  // namespace contender::serve

#include "serve/snapshot_holder.h"

#include <utility>

#include "util/logging.h"

namespace contender::serve {

SnapshotHolder::SnapshotHolder(std::shared_ptr<const ModelSnapshot> initial)
    : current_(std::move(initial)) {
  CONTENDER_CHECK(current_ != nullptr)
      << "SnapshotHolder: initial snapshot must be non-null";
  ref_.Write({current_.get(), current_->version()});
}

SnapshotHolder::~SnapshotHolder() = default;

SnapshotHolder::View::View(const SnapshotHolder* holder)
    : guard_(&holder->epochs_) {
  // Epoch registration (the guard, already constructed) MUST precede the
  // seqlock read: the reclamation proof relies on the pointer being
  // loaded after this reader's announcement is visible to writers.
  if (guard_.engaged()) {
    Ref ref;
    if (holder->ref_.TryRead(&ref, kReadSpins)) {
      snapshot_ = ref.snapshot;
      version_ = ref.version;
      return;
    }
  }
  // Slow path (slot saturation or writer churn): pin by refcount. The
  // guard stays registered but unused — harmless.
  fallback_ = holder->shared();
  snapshot_ = fallback_.get();
  version_ = fallback_->version();
}

std::shared_ptr<const ModelSnapshot> SnapshotHolder::shared() const {
  const MutexLock lock(&writer_mutex_);  // contender-lint: writer-seam
  return current_;
}

void SnapshotHolder::Publish(std::shared_ptr<const ModelSnapshot> next) {
  CONTENDER_CHECK(next != nullptr)
      << "SnapshotHolder: cannot publish a null snapshot";
  std::shared_ptr<const ModelSnapshot> displaced;
  {
    const MutexLock lock(&writer_mutex_);  // contender-lint: writer-seam
    ref_.Write({next.get(), next->version()});
    displaced = std::move(current_);
    current_ = std::move(next);
  }
  // Retire outside the seam so reclamation (which may run a snapshot
  // destructor) never extends the writer critical section readers'
  // fallback path waits on.
  epochs_.Retire(std::move(displaced));
}

}  // namespace contender::serve

#include "serve/service.h"

#include <algorithm>
#include <future>
#include <utility>

#include "util/logging.h"

namespace contender::serve {

PredictionService::PredictionService(
    std::shared_ptr<const ModelSnapshot> initial)
    : PredictionService(std::move(initial), Options()) {}

PredictionService::PredictionService(
    std::shared_ptr<const ModelSnapshot> initial, const Options& options)
    : options_(options),
      holder_(std::move(initial)),  // CHECKs non-null
      pool_(options.num_threads <= 0 ? ThreadPool::DefaultThreads()
                                     : options.num_threads) {}

std::shared_ptr<const ModelSnapshot> PredictionService::snapshot() const {
  return holder_.shared();
}

void PredictionService::Publish(std::shared_ptr<const ModelSnapshot> next) {
  CONTENDER_CHECK(next != nullptr)
      << "PredictionService: cannot publish a null snapshot";
  holder_.Publish(std::move(next));
  publishes_.fetch_add(1, std::memory_order_relaxed);
}

PredictResult PredictionService::PredictOn(const ModelSnapshot& snapshot,
                                           const PredictRequest& request) const {
  PredictResult result;
  result.snapshot_version = snapshot.version();
  const int n = snapshot.num_templates();
  if (request.template_index < 0 || request.template_index >= n) {
    result.status =
        Status::InvalidArgument("PredictionService: bad template index");
    return result;
  }
  for (int c : request.concurrent) {
    if (c < 0 || c >= n) {
      result.status = Status::InvalidArgument(
          "PredictionService: bad concurrent template index");
      return result;
    }
  }
  // An open breaker quarantines the template's own model: descend the
  // ladder starting at tier 1 (transferred-QS). Closed and half-open both
  // allow tier 0 — half-open IS the recovery probe.
  const bool allow_full_model =
      options_.health == nullptr ||
      options_.health->state(request.template_index) != BreakerState::kOpen;
  const TieredPrediction answer = snapshot.PredictInMixTiered(
      request.template_index, request.concurrent, allow_full_model);
  result.latency = answer.latency;
  result.tier = answer.tier;
  return result;
}

void PredictionService::AddTierCounts(
    int stripe, const std::array<uint64_t, 3>& counts) const {
  for (size_t t = 0; t < counts.size(); ++t) {
    if (counts[t] != 0) tier_counts_[t].Add(stripe, counts[t]);
  }
}

StatusOr<units::Seconds> PredictionService::Predict(
    int template_index, const std::vector<int>& concurrent) const {
  const SnapshotHolder::View view = holder_.Acquire();
  PredictRequest request;
  request.template_index = template_index;
  request.concurrent = concurrent;
  const PredictResult result = PredictOn(*view, request);
  served_.Add(view.stats_slot());
  if (!result.status.ok()) return result.status;
  tier_counts_[static_cast<size_t>(result.tier)].Add(view.stats_slot());
  return result.latency;
}

PredictResult PredictionService::PredictDetailed(
    int template_index, const std::vector<int>& concurrent) const {
  const SnapshotHolder::View view = holder_.Acquire();
  PredictRequest request;
  request.template_index = template_index;
  request.concurrent = concurrent;
  const PredictResult result = PredictOn(*view, request);
  served_.Add(view.stats_slot());
  if (result.status.ok()) {
    tier_counts_[static_cast<size_t>(result.tier)].Add(view.stats_slot());
  }
  return result;
}

std::vector<PredictResult> PredictionService::PredictBatch(
    const std::vector<PredictRequest>& batch) const {
  // One pinned snapshot for the whole batch: every answer is mutually
  // consistent even if a Publish lands mid-batch.
  const SnapshotHolder::View view = holder_.Acquire();
  std::vector<PredictResult> results(batch.size());
  served_.Add(view.stats_slot(), batch.size());
  if (batch.size() <= options_.inline_batch_limit ||
      pool_.num_threads() < 2) {
    std::array<uint64_t, 3> counts{};
    for (size_t i = 0; i < batch.size(); ++i) {
      results[i] = PredictOn(*view, batch[i]);
      if (results[i].status.ok()) {
        ++counts[static_cast<size_t>(results[i].tier)];
      }
    }
    AddTierCounts(view.stats_slot(), counts);
    return results;
  }
  // Chunked fan-out; each task writes a disjoint slice, so no result-side
  // synchronization is needed and the output is identical to the inline
  // path (each entry is a pure function of (snapshot, request)). Tier
  // tallies accumulate per chunk and fold in with one striped Add per
  // tier, so workers never rendezvous on a shared counter line.
  const size_t chunks =
      std::min(batch.size(), static_cast<size_t>(pool_.num_threads()) * 2);
  const size_t per_chunk = (batch.size() + chunks - 1) / chunks;
  const ModelSnapshot* snap = view.get();
  std::vector<std::future<void>> pending;
  pending.reserve(chunks);
  int stripe = 0;
  for (size_t start = 0; start < batch.size(); start += per_chunk, ++stripe) {
    const size_t end = std::min(start + per_chunk, batch.size());
    pending.push_back(
        pool_.Submit([this, snap, &batch, &results, start, end, stripe] {
          std::array<uint64_t, 3> counts{};
          for (size_t i = start; i < end; ++i) {
            results[i] = PredictOn(*snap, batch[i]);
            if (results[i].status.ok()) {
              ++counts[static_cast<size_t>(results[i].tier)];
            }
          }
          AddTierCounts(stripe, counts);
        }));
  }
  for (std::future<void>& f : pending) f.get();
  return results;
}

}  // namespace contender::serve

#include "serve/refit_controller.h"

#include <algorithm>
#include <utility>

#include "util/logging.h"

namespace contender::serve {

RefitController::RefitController(PredictionService* service,
                                 ObservationLog* log,
                                 std::vector<MixObservation>
                                     base_observations,
                                 const RefitOptions& options)
    : service_(service),
      log_(log),
      options_(options),
      observations_(std::move(base_observations)) {
  CONTENDER_CHECK(service_ != nullptr);
  CONTENDER_CHECK(log_ != nullptr);
}

RefitController::~RefitController() { Stop(); }

StatusOr<RefitStep> RefitController::Step() {
  std::lock_guard<std::mutex> lock(step_mutex_);
  RefitStep step;

  const size_t pending = log_->pending();
  const double drift = log_->pending_mean_abs_residual();
  if (pending >= options_.min_new_observations) {
    step.trigger = RefitStep::Trigger::kCount;
  } else if (pending >= options_.drift_min_observations &&
             drift > options_.residual_threshold) {
    step.trigger = RefitStep::Trigger::kDrift;
  } else {
    return step;  // nothing to do; not an error
  }

  ObservationBatch batch = log_->Drain();
  step.observations_consumed = batch.observations.size();
  for (const MixObservation& obs : batch.observations) {
    step.refit_templates.push_back(obs.primary_index);
  }
  std::sort(step.refit_templates.begin(), step.refit_templates.end());
  step.refit_templates.erase(std::unique(step.refit_templates.begin(),
                                         step.refit_templates.end()),
                             step.refit_templates.end());
  observations_.insert(observations_.end(),
                       std::make_move_iterator(batch.observations.begin()),
                       std::make_move_iterator(batch.observations.end()));

  // Refit on a copy; the live snapshot keeps serving untouched until the
  // publish below.
  const std::shared_ptr<const ModelSnapshot> live = service_->snapshot();
  auto refit = live->predictor().WithRefitTemplates(observations_,
                                                    step.refit_templates);
  if (!refit.ok()) return refit.status();
  std::shared_ptr<const ModelSnapshot> next =
      ModelSnapshot::Create(std::move(*refit), live->version() + 1,
                            options_.oracle_options);
  step.published_version = next->version();
  service_->Publish(std::move(next));
  step.refit = true;
  refits_.fetch_add(1, std::memory_order_relaxed);
  return step;
}

void RefitController::StartBackground(std::chrono::milliseconds interval) {
  std::lock_guard<std::mutex> lock(background_mutex_);
  CONTENDER_CHECK(!background_.joinable())
      << "RefitController: background loop already running";
  stop_requested_ = false;
  background_ = std::thread([this, interval] {
    std::unique_lock<std::mutex> lock(background_mutex_);
    while (!background_wake_.wait_for(lock, interval,
                                      [this] { return stop_requested_; })) {
      lock.unlock();
      auto step = Step();
      if (!step.ok()) {
        CONTENDER_LOG(Warning)
            << "RefitController: background refit failed: " << step.status();
      }
      lock.lock();
    }
  });
}

void RefitController::Stop() {
  std::thread to_join;
  {
    std::lock_guard<std::mutex> lock(background_mutex_);
    if (!background_.joinable()) return;
    stop_requested_ = true;
    to_join = std::move(background_);
  }
  background_wake_.notify_all();
  to_join.join();
}

size_t RefitController::training_set_size() const {
  std::lock_guard<std::mutex> lock(step_mutex_);
  return observations_.size();
}

}  // namespace contender::serve

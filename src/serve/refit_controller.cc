#include "serve/refit_controller.h"

#include <algorithm>
#include <utility>

#include "util/failpoint.h"
#include "util/logging.h"

namespace contender::serve {

namespace {

// Chaos sites: kFit fails the (retryable) model fit, kPublish aborts the
// step after a successful fit but before the snapshot swap — the publish
// itself is atomic, so the only injectable publish failure is "never
// happened", which is exactly what kAborted reports.
auto& kFitFailPoint = CONTENDER_DEFINE_FAILPOINT("serve.refit.fit");
auto& kPublishFailPoint = CONTENDER_DEFINE_FAILPOINT("serve.refit.publish");

}  // namespace

RefitController::RefitController(PredictionService* service,
                                 ObservationLog* log,
                                 std::vector<MixObservation>
                                     base_observations,
                                 const RefitOptions& options)
    : service_(service),
      log_(log),
      options_(options),
      observations_(std::move(base_observations)) {
  CONTENDER_CHECK(service_ != nullptr);
  CONTENDER_CHECK(log_ != nullptr);
}

RefitController::~RefitController() { Stop(); }

StatusOr<RefitStep> RefitController::Step() {
  MutexLock lock(&step_mutex_);
  RefitStep step;

  const size_t pending = log_->pending();
  const double drift = log_->pending_mean_abs_residual();
  if (pending >= options_.min_new_observations) {
    step.trigger = RefitStep::Trigger::kCount;
  } else if (pending >= options_.drift_min_observations &&
             drift > options_.residual_threshold) {
    step.trigger = RefitStep::Trigger::kDrift;
  } else {
    return step;  // nothing to do; not an error
  }

  ObservationBatch batch = log_->Drain();
  step.observations_consumed = batch.observations.size();
  for (const MixObservation& obs : batch.observations) {
    step.refit_templates.push_back(obs.primary_index);
  }
  std::sort(step.refit_templates.begin(), step.refit_templates.end());
  step.refit_templates.erase(std::unique(step.refit_templates.begin(),
                                         step.refit_templates.end()),
                             step.refit_templates.end());
  const uint64_t step_index = triggered_steps_++;

  // Candidate training set: the batch joins `observations_` only if the
  // refit succeeds. Until then everything runs on copies — the live
  // snapshot and the committed training set are untouched by any failure.
  std::vector<MixObservation> candidate = observations_;
  candidate.insert(candidate.end(), batch.observations.begin(),
                   batch.observations.end());

  const std::shared_ptr<const ModelSnapshot> live = service_->snapshot();
  std::shared_ptr<const ModelSnapshot> next;
  auto attempt = [&]() -> Status {
    next = nullptr;
    if (kFitFailPoint.ShouldFail()) {
      return Status::Internal("RefitController: injected fit failure");
    }
    auto refit = live->predictor().WithRefitTemplates(candidate,
                                                      step.refit_templates);
    if (!refit.ok()) return refit.status();
    if (kPublishFailPoint.ShouldFail()) {
      // The swap in Publish() is atomic, so a "publish failure" can only
      // mean the new snapshot never went live — deliberate abandonment,
      // which kAborted marks as non-retryable.
      return Status::Aborted("RefitController: injected publish abort");
    }
    next = ModelSnapshot::Create(std::move(*refit), live->version() + 1,
                                 options_.oracle_options);
    return Status::OK();
  };
  const Status fit_status = overload::RetryWithBudget(
      options_.retry_budget, options_.retry_budget_key,
      options_.refit_retry, options_.retry_jitter_seed ^ step_index,
      options_.clock != nullptr ? options_.clock : Clock::System(), attempt);
  if (!fit_status.ok()) {
    // Quarantine the batch: it broke the fit repeatedly, so letting it
    // rejoin the training set would poison every future refit too.
    log_->Quarantine(std::move(batch.observations));
    failed_steps_.fetch_add(1, std::memory_order_relaxed);
    return fit_status;
  }

  observations_ = std::move(candidate);
  step.published_version = next->version();
  service_->Publish(std::move(next));
  step.refit = true;
  refits_.fetch_add(1, std::memory_order_relaxed);
  return step;
}

void RefitController::StartBackground(std::chrono::milliseconds interval) {
  MutexLock lock(&background_mutex_);
  CONTENDER_CHECK(!background_.joinable())
      << "RefitController: background loop already running";
  stop_requested_ = false;
  background_ = std::thread([this, interval] {
    // Explicit Lock/Unlock (not MutexLock) because the lock is dropped
    // around Step() inside the loop: Step serializes on step_mutex_ and
    // must never run under the background lock, or Stop() would block
    // behind a whole refit.
    background_mutex_.Lock();
    // WaitFor evaluates the predicate with background_mutex_ held, but
    // the analysis cannot see that through the template indirection
    // (R8-budgeted suppression).
    while (!background_wake_.WaitFor(
        &background_mutex_, interval,
        [this]() NO_THREAD_SAFETY_ANALYSIS { return stop_requested_; })) {
      background_mutex_.Unlock();
      auto step = Step();
      if (!step.ok()) {
        CONTENDER_LOG(Warning)
            << "RefitController: background refit failed: " << step.status();
      }
      background_mutex_.Lock();
    }
    background_mutex_.Unlock();
  });
}

void RefitController::Stop() {
  std::thread to_join;
  {
    MutexLock lock(&background_mutex_);
    if (!background_.joinable()) return;
    stop_requested_ = true;
    to_join = std::move(background_);
  }
  background_wake_.NotifyAll();
  to_join.join();
}

size_t RefitController::training_set_size() const {
  MutexLock lock(&step_mutex_);
  return observations_.size();
}

}  // namespace contender::serve

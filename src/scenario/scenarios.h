// The built-in scenario suite. Each class is exported so tests and
// benches can construct one with non-default shape knobs; the registry
// holds one default-constructed instance of each, registered in
// scenarios.cc via CONTENDER_REGISTER_SCENARIO.
//
// Shape knobs are constructor parameters (not ScenarioParams fields) so a
// registered scenario's behaviour is a pure function of (name, params) —
// the robustness matrix stays reproducible from the registry alone.

#ifndef CONTENDER_SCENARIO_SCENARIOS_H_
#define CONTENDER_SCENARIO_SCENARIOS_H_

#include <vector>

#include "scenario/scenario.h"

namespace contender::scenario {

/// Homogeneous Poisson arrivals — bit-exact to the pre-scenario
/// sched::GenerateArrivals (single-node mode) and fleet's per-tenant
/// streams (fleet mode). The tree's default and the parity baseline.
class PoissonSteady : public Scenario {
 public:
  PoissonSteady() = default;

  [[nodiscard]] const char* name() const override { return "poisson-steady"; }
  [[nodiscard]] const char* description() const override {
    return "homogeneous Poisson arrivals (legacy default, parity baseline)";
  }

 protected:
  void FillTenantStream(const std::vector<units::Seconds>& reference_latencies,
                        const ScenarioParams& params, const TenantPlan& plan,
                        Rng* rng, std::vector<sched::Request>* out,
                        std::map<std::string, double>* stats) const override;
};

/// Sinusoid-modulated arrivals via thinning: candidates are drawn at the
/// peak rate and accepted with probability proportional to
/// 1 + amplitude * sin(2π t / period), so the instantaneous rate swings
/// between (1-amplitude)x and (1+amplitude)x of the mean — a daily
/// load cycle compressed into the trace.
class DiurnalCycle : public Scenario {
 public:
  explicit DiurnalCycle(double amplitude = 0.8, double period_gaps = 64.0);

  [[nodiscard]] const char* name() const override { return "diurnal-cycle"; }
  [[nodiscard]] const char* description() const override {
    return "sinusoid-modulated thinned Poisson (daily load cycle)";
  }

  [[nodiscard]] double amplitude() const { return amplitude_; }
  /// Modulation period, in units of the merged mean interarrival gap.
  [[nodiscard]] double period_gaps() const { return period_gaps_; }

 protected:
  void FillTenantStream(const std::vector<units::Seconds>& reference_latencies,
                        const ScenarioParams& params, const TenantPlan& plan,
                        Rng* rng, std::vector<sched::Request>* out,
                        std::map<std::string, double>* stats) const override;

 private:
  const double amplitude_;
  const double period_gaps_;
};

/// 2-state Markov-modulated Poisson process: exponential sojourns in a
/// quiet state (sub-mean rate) and a burst state (several times the mean
/// rate). Stresses admission control with flash crowds the long-run rate
/// hides. Reports "mmpp.switches" and "mmpp.burst_requests".
class FlashCrowd : public Scenario {
 public:
  explicit FlashCrowd(double burst_rate_multiplier = 6.0,
                      double quiet_rate_multiplier = 0.6,
                      double quiet_sojourn_gaps = 30.0,
                      double burst_sojourn_gaps = 6.0);

  [[nodiscard]] const char* name() const override { return "flash-crowd"; }
  [[nodiscard]] const char* description() const override {
    return "2-state MMPP burst/quiet switching (flash crowds)";
  }

  [[nodiscard]] double burst_rate_multiplier() const {
    return burst_rate_multiplier_;
  }
  [[nodiscard]] double quiet_rate_multiplier() const {
    return quiet_rate_multiplier_;
  }

 protected:
  void FillTenantStream(const std::vector<units::Seconds>& reference_latencies,
                        const ScenarioParams& params, const TenantPlan& plan,
                        Rng* rng, std::vector<sched::Request>* out,
                        std::map<std::string, double>* stats) const override;

 private:
  const double burst_rate_multiplier_;
  const double quiet_rate_multiplier_;
  const double quiet_sojourn_gaps_;
  const double burst_sojourn_gaps_;
};

/// Heavy-tailed everything: tenant rate skew is floored at a Zipf
/// exponent well above uniform (fleet mode), and within each tenant's
/// window templates are drawn Zipf rather than uniformly, so a few
/// templates absorb most of the stream — where contention blame
/// concentrates (Kalmegh et al.).
class HeavyTailTenants : public Scenario {
 public:
  explicit HeavyTailTenants(double min_rate_skew = 1.6,
                            double template_skew = 1.1);

  [[nodiscard]] const char* name() const override {
    return "heavy-tail-tenants";
  }
  [[nodiscard]] const char* description() const override {
    return "Zipf tenant rates + Zipf template skew (heavy-tailed load)";
  }

  [[nodiscard]] double template_skew() const { return template_skew_; }

 protected:
  void FillTenantStream(const std::vector<units::Seconds>& reference_latencies,
                        const ScenarioParams& params, const TenantPlan& plan,
                        Rng* rng, std::vector<sched::Request>* out,
                        std::map<std::string, double>* stats) const override;
  [[nodiscard]] double TenantRateSkew(
      const ScenarioParams& params) const override;

 private:
  const double min_rate_skew_;
  const double template_skew_;
};

/// Ad-hoc novel-template injection: a fixed held-out slice of the
/// workload (the last fifth of the template indices) is excluded from the
/// base stream and injected with a small per-request probability —
/// exactly the never-before-seen templates that force the paper's §6
/// KNN-spoiler transfer tier when the predictor was trained without them.
/// Reports "adhoc.novel_requests".
class AdHocNovel : public Scenario {
 public:
  explicit AdHocNovel(double novel_probability = 0.2);

  [[nodiscard]] const char* name() const override { return "adhoc-novel"; }
  [[nodiscard]] const char* description() const override {
    return "held-out novel templates injected mid-stream (QS-transfer "
           "stress)";
  }

  /// The held-out slice: the last max(1, num_templates / 5) template
  /// indices. bench_scenarios trains its transfer-stressed predictor by
  /// dropping exactly these templates' primary observations.
  static std::vector<int> NovelTemplates(int num_templates);

  [[nodiscard]] double novel_probability() const { return novel_probability_; }

 protected:
  void FillTenantStream(const std::vector<units::Seconds>& reference_latencies,
                        const ScenarioParams& params, const TenantPlan& plan,
                        Rng* rng, std::vector<sched::Request>* out,
                        std::map<std::string, double>* stats) const override;

 private:
  const double novel_probability_;
};

/// Composite OLAP + refresh traffic: a steady Poisson OLAP stream with a
/// synchronized storm of refresh requests (drawn from the first tenth of
/// the workload) every `period_gaps` mean gaps — ETL-style load spikes on
/// top of analytics. Reports "refresh.storm_requests".
class MixedRefresh : public Scenario {
 public:
  explicit MixedRefresh(double period_gaps = 24.0, int storm_size = 4);

  [[nodiscard]] const char* name() const override { return "mixed-refresh"; }
  [[nodiscard]] const char* description() const override {
    return "steady OLAP stream + periodic synchronized refresh storms";
  }

  /// The refresh set: the first max(1, num_templates / 10) template
  /// indices.
  static std::vector<int> RefreshTemplates(int num_templates);

  [[nodiscard]] int storm_size() const { return storm_size_; }
  [[nodiscard]] double period_gaps() const { return period_gaps_; }

 protected:
  void FillTenantStream(const std::vector<units::Seconds>& reference_latencies,
                        const ScenarioParams& params, const TenantPlan& plan,
                        Rng* rng, std::vector<sched::Request>* out,
                        std::map<std::string, double>* stats) const override;

 private:
  const double period_gaps_;
  const int storm_size_;
};

}  // namespace contender::scenario

#endif  // CONTENDER_SCENARIO_SCENARIOS_H_

#include "scenario/interarrival.h"

#include <cmath>

namespace contender::scenario {

units::Seconds ExponentialGap(Rng* rng, units::Seconds mean) {
  const double u = rng->Uniform01();
  return mean * (-std::log1p(-u));
}

std::optional<units::Seconds> MaybeDeadline(Rng* rng, double probability,
                                            double min_slack,
                                            double max_slack,
                                            units::Seconds arrival,
                                            units::Seconds reference_latency) {
  if (probability > 0.0 && rng->Uniform01() < probability) {
    const double slack = rng->Uniform(min_slack, max_slack);
    return arrival + reference_latency * slack;
  }
  return std::nullopt;
}

}  // namespace contender::scenario

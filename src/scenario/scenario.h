// Pluggable workload scenarios: named, seeded arrival-trace generators
// that put non-Poisson traffic shapes through the same predictor /
// scheduler / serve stack the homogeneous stream always used.
//
// A Scenario owns the per-tenant *shape* of the stream (when requests
// land, which templates they draw) while the shared driver in the base
// class owns everything that must stay identical across scenarios: option
// validation, tenant planning (Zipf rate shares, largest-remainder request
// apportionment, rotating template windows — bit-exact to the fleet
// population generator), per-tenant seed pre-derivation from the root
// seed, and the deterministic (arrival, tenant, draw-index) merge that
// assigns dense request ids. Scenarios therefore cannot accidentally
// break the tree's determinism discipline: all randomness a scenario
// sees is the one per-tenant Rng the driver hands it, whose seed is a
// pure function of (root seed, tenant order). No wall clock, no thread
// identity, no fail points — a scenario trace is bit-identical at any
// thread count and under an armed chaos harness.
//
// Scenarios self-register into ScenarioRegistry at static-initialization
// time via CONTENDER_REGISTER_SCENARIO (the SMOL-style suite idiom), so
// benches, tests, and the fleet demo enumerate them by name without a
// central switch.

#ifndef CONTENDER_SCENARIO_SCENARIO_H_
#define CONTENDER_SCENARIO_SCENARIO_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sched/request.h"
#include "util/mutex.h"
#include "util/random.h"
#include "util/statusor.h"
#include "util/units.h"

namespace contender::scenario {

/// Knobs shared by every scenario. The single-node entry point
/// (GenerateTrace) ignores the tenant fields and emits one merged stream
/// with tenant_id 0; the fleet entry point (GenerateFleetTrace) plans
/// `num_tenants` independent sources exactly like fleet::PopulationOptions
/// always did. Scenario-specific shape knobs (burst ratios, skew
/// exponents, storm sizes) are constructor parameters of the concrete
/// scenarios, so registry defaults stay one-line reproducible.
struct ScenarioParams {
  /// Total requests across all tenants.
  int num_requests = 32;
  /// Mean interarrival gap of the merged stream (per-tenant gaps divide
  /// this by the tenant's rate share). Non-stationary scenarios treat it
  /// as the long-run average rate they modulate around.
  units::Seconds mean_interarrival{20.0};
  /// Per-request SLA deadline parameters, as in sched::ArrivalOptions.
  double deadline_probability = 0.0;
  double min_slack = 2.0;
  double max_slack = 6.0;
  /// Fleet mode only: tenant count, Zipf rate skew, and the rotating
  /// template-window width (0 = whole workload), as in
  /// fleet::PopulationOptions.
  int num_tenants = 4;
  double skew = 0.0;
  int templates_per_tenant = 0;
  uint64_t seed = 42;
};

/// One tenant of a fleet-mode trace, with its derived traffic parameters
/// (mirrors fleet::TenantSpec so the fleet layer converts losslessly).
struct TenantTraffic {
  int tenant_id = 0;
  double rate_share = 0.0;
  int num_requests = 0;
  std::vector<int> templates;
};

/// A generated trace: the merged request stream (dense ids in arrival
/// order, tenant stamped), the tenant plan it was drawn from, and
/// scenario-reported shape statistics (e.g. "mmpp.switches",
/// "adhoc.novel_requests") for benches and sanity tests.
struct ScenarioTrace {
  std::vector<sched::Request> requests;
  std::vector<TenantTraffic> tenants;
  std::map<std::string, double> stats;
};

/// Order-sensitive FNV-1a digest over every (id, template, tenant,
/// arrival, deadline) tuple of a trace. Two traces digest equal iff they
/// are bit-identical; tests and bench_scenarios use it to assert
/// thread-count invariance and chaos-replay identity cheaply.
uint64_t TraceDigest(const std::vector<sched::Request>& requests);

/// Interface + shared driver for workload scenarios. Concrete scenarios
/// implement FillTenantStream (the per-tenant shape) and optionally
/// override TenantRateSkew / ValidateExtra; everything else is fixed.
/// Scenario objects are immutable after construction and safe to share
/// across threads.
class Scenario {
 public:
  virtual ~Scenario() = default;

  Scenario(const Scenario&) = delete;
  Scenario& operator=(const Scenario&) = delete;

  /// Stable registry key, e.g. "poisson-steady".
  [[nodiscard]] virtual const char* name() const = 0;
  /// One-line human description for --scenario=list and the bench table.
  [[nodiscard]] virtual const char* description() const = 0;

  /// Single-node mode: one tenant spanning the whole workload at rate
  /// share 1, seeded directly from params.seed with no derivation and no
  /// gap before the first request — the contract sched::GenerateArrivals
  /// has always exposed (first request at t = 0 under PoissonSteady).
  [[nodiscard]] StatusOr<ScenarioTrace> GenerateTrace(
      const std::vector<units::Seconds>& reference_latencies,
      const ScenarioParams& params) const;

  /// Fleet mode: num_tenants independent sources with Zipf rate shares,
  /// largest-remainder request apportionment, rotating template windows,
  /// per-tenant seeds pre-derived from the root seed in tenant order, and
  /// a gap before every tenant's first request — the contract
  /// fleet::GeneratePopulation has always exposed.
  [[nodiscard]] StatusOr<ScenarioTrace> GenerateFleetTrace(
      const std::vector<units::Seconds>& reference_latencies,
      const ScenarioParams& params) const;

 protected:
  Scenario() = default;

  /// The driver's per-tenant work order. Everything a scenario needs to
  /// emit one tenant's sub-stream deterministically.
  struct TenantPlan {
    int tenant_id = 0;
    double rate_share = 1.0;
    int num_requests = 0;
    /// Sorted unique template window the tenant draws from.
    std::vector<int> templates;
    /// This tenant's mean gap (merged mean / rate share).
    units::Seconds mean_gap;
    /// Fleet tenants gap before their first request; the single-node
    /// stream starts at t = 0.
    bool gap_before_first = true;
  };

  /// Emits plan.num_requests requests into `out` (template_index,
  /// arrival_time, deadline only — the driver stamps tenant_id and
  /// assigns request ids after the merge). All randomness must come from
  /// `rng`; shape statistics accumulate into `stats` with operator+=.
  virtual void FillTenantStream(
      const std::vector<units::Seconds>& reference_latencies,
      const ScenarioParams& params, const TenantPlan& plan, Rng* rng,
      std::vector<sched::Request>* out,
      std::map<std::string, double>* stats) const = 0;

  /// Effective Zipf exponent over tenant rates in fleet mode. Default:
  /// params.skew unchanged; HeavyTailTenants forces a heavy floor.
  [[nodiscard]] virtual double TenantRateSkew(
      const ScenarioParams& params) const;

  /// Scenario-specific parameter validation, after the shared checks.
  [[nodiscard]] virtual Status ValidateExtra(
      const ScenarioParams& params) const;

 private:
  [[nodiscard]] StatusOr<ScenarioTrace> Generate(
      const std::vector<units::Seconds>& reference_latencies,
      const ScenarioParams& params, bool fleet_mode) const;
};

/// Process-wide scenario registry. Registration normally happens at
/// static-initialization time through CONTENDER_REGISTER_SCENARIO; lookups
/// are thread-safe and returned pointers live for the process lifetime.
/// Instance() is defined in scenarios.cc next to the built-in
/// registrations, so any use of the registry links the builtins in — a
/// static-library build can never observe an empty registry.
class ScenarioRegistry {
 public:
  static ScenarioRegistry& Instance();

  /// Registers a scenario under scenario->name(). Duplicate names are a
  /// programming error (CHECK).
  void Register(std::unique_ptr<Scenario> scenario) EXCLUDES(mutex_);

  /// Returns the scenario named `name`, or nullptr.
  [[nodiscard]] const Scenario* Find(const std::string& name) const
      EXCLUDES(mutex_);

  /// Every registered scenario, sorted by name.
  [[nodiscard]] std::vector<const Scenario*> All() const EXCLUDES(mutex_);

 private:
  ScenarioRegistry() = default;

  mutable Mutex mutex_;
  std::map<std::string, std::unique_ptr<Scenario>> scenarios_
      GUARDED_BY(mutex_);
};

/// Registry name of the scenario every legacy entry point defaults to.
inline constexpr char kPoissonSteadyName[] = "poisson-steady";

/// Convenience lookups over ScenarioRegistry::Instance().
const Scenario* FindScenario(const std::string& name);
std::vector<const Scenario*> AllScenarios();

/// Self-registration hook. Use at namespace scope in the defining .cc:
///
///   CONTENDER_REGISTER_SCENARIO(FlashCrowd)
#define CONTENDER_REGISTER_SCENARIO(ClassName)                       \
  namespace {                                                        \
  const bool kRegistered##ClassName = [] {                           \
    ::contender::scenario::ScenarioRegistry::Instance().Register(    \
        std::make_unique<ClassName>());                              \
    return true;                                                     \
  }();                                                               \
  }  // namespace

}  // namespace contender::scenario

#endif  // CONTENDER_SCENARIO_SCENARIO_H_

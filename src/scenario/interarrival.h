// The single seeded source of arrival-stream sampling primitives. Both
// sched::GenerateArrivals and fleet::GeneratePopulation used to carry a
// private copy of the inverse-transform exponential gap and the Bernoulli
// deadline draw; those now live here and every scenario (and both legacy
// entry points, via PoissonSteady) samples through these two functions.
// Draw order is part of the contract: callers that replicate the legacy
// streams must draw template → gap → deadline, and each helper consumes a
// fixed number of Rng draws (gap: one Uniform01; deadline: one Uniform01,
// plus one Uniform(min, max) only when the Bernoulli fires).

#ifndef CONTENDER_SCENARIO_INTERARRIVAL_H_
#define CONTENDER_SCENARIO_INTERARRIVAL_H_

#include <optional>

#include "util/random.h"
#include "util/units.h"

namespace contender::scenario {

/// One exponential interarrival gap with the given mean, via inverse
/// transform: mean * (-log1p(-u)) with u = rng->Uniform01(). Bit-exact to
/// the sampling formerly duplicated in sched/request.cc and
/// fleet/population.cc.
units::Seconds ExponentialGap(Rng* rng, units::Seconds mean);

/// Bernoulli SLA deadline: when `probability` > 0, draws one Uniform01;
/// if it lands below `probability`, draws slack uniform in
/// [min_slack, max_slack) and returns arrival + slack * reference_latency.
/// Otherwise (including probability == 0, which consumes no draws at all)
/// returns nullopt. Matches the legacy per-request deadline pattern
/// exactly, draw for draw.
std::optional<units::Seconds> MaybeDeadline(Rng* rng, double probability,
                                            double min_slack,
                                            double max_slack,
                                            units::Seconds arrival,
                                            units::Seconds reference_latency);

}  // namespace contender::scenario

#endif  // CONTENDER_SCENARIO_INTERARRIVAL_H_

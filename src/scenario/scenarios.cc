#include "scenario/scenarios.h"

#include <algorithm>
#include <cmath>

#include "scenario/interarrival.h"
#include "util/logging.h"

namespace contender::scenario {

namespace {

constexpr double kTwoPi = 6.283185307179586476925286766559;

/// Draws one template uniformly from `window` — the shared template draw
/// of every non-skewed scenario, bit-exact to the legacy generators.
int UniformTemplate(Rng* rng, const std::vector<int>& window) {
  return window[static_cast<size_t>(
      rng->UniformInt(static_cast<uint64_t>(window.size())))];
}

/// Inverse-CDF draw over precomputed cumulative weights (last entry 1.0).
size_t CumulativeDraw(Rng* rng, const std::vector<double>& cumulative) {
  const double u = rng->Uniform01();
  const auto it =
      std::upper_bound(cumulative.begin(), cumulative.end(), u);
  const size_t i =
      static_cast<size_t>(std::distance(cumulative.begin(), it));
  return std::min(i, cumulative.size() - 1);
}

}  // namespace

// ---------------------------------------------------------------------------
// PoissonSteady

void PoissonSteady::FillTenantStream(
    const std::vector<units::Seconds>& reference_latencies,
    const ScenarioParams& params, const TenantPlan& plan, Rng* rng,
    std::vector<sched::Request>* out,
    std::map<std::string, double>* stats) const {
  (void)stats;
  units::Seconds clock;
  for (int k = 0; k < plan.num_requests; ++k) {
    sched::Request r;
    // Legacy draw order: template, gap, deadline.
    r.template_index = UniformTemplate(rng, plan.templates);
    if (plan.gap_before_first || k > 0) {
      clock += ExponentialGap(rng, plan.mean_gap);
    }
    r.arrival_time = clock;
    r.deadline = MaybeDeadline(
        rng, params.deadline_probability, params.min_slack, params.max_slack,
        clock, reference_latencies[static_cast<size_t>(r.template_index)]);
    out->push_back(r);
  }
}

// ---------------------------------------------------------------------------
// DiurnalCycle

DiurnalCycle::DiurnalCycle(double amplitude, double period_gaps)
    : amplitude_(amplitude), period_gaps_(period_gaps) {
  CONTENDER_CHECK(amplitude_ >= 0.0 && amplitude_ < 1.0)
      << "diurnal amplitude must be in [0, 1)";
  CONTENDER_CHECK(period_gaps_ > 0.0);
}

void DiurnalCycle::FillTenantStream(
    const std::vector<units::Seconds>& reference_latencies,
    const ScenarioParams& params, const TenantPlan& plan, Rng* rng,
    std::vector<sched::Request>* out,
    std::map<std::string, double>* stats) const {
  // Thinning (Lewis–Shedler): candidates at the peak rate, accepted with
  // probability rate(t)/peak. The accepted stream is an inhomogeneous
  // Poisson process with rate (1 + A sin(2π t / period)) / mean_gap.
  const units::Seconds period = params.mean_interarrival * period_gaps_;
  const units::Seconds peak_gap = plan.mean_gap * (1.0 / (1.0 + amplitude_));
  units::Seconds clock;
  double candidates = 0.0;
  for (int k = 0; k < plan.num_requests; ++k) {
    bool first_candidate = true;
    for (;;) {
      if (plan.gap_before_first || k > 0 || !first_candidate) {
        clock += ExponentialGap(rng, peak_gap);
      }
      first_candidate = false;
      candidates += 1.0;
      const double phase = kTwoPi * clock.value() / period.value();
      const double accept =
          (1.0 + amplitude_ * std::sin(phase)) / (1.0 + amplitude_);
      if (rng->Uniform01() < accept) break;
    }
    sched::Request r;
    r.template_index = UniformTemplate(rng, plan.templates);
    r.arrival_time = clock;
    r.deadline = MaybeDeadline(
        rng, params.deadline_probability, params.min_slack, params.max_slack,
        clock, reference_latencies[static_cast<size_t>(r.template_index)]);
    out->push_back(r);
  }
  (*stats)["diurnal.candidates"] += candidates;
}

// ---------------------------------------------------------------------------
// FlashCrowd

FlashCrowd::FlashCrowd(double burst_rate_multiplier,
                       double quiet_rate_multiplier,
                       double quiet_sojourn_gaps, double burst_sojourn_gaps)
    : burst_rate_multiplier_(burst_rate_multiplier),
      quiet_rate_multiplier_(quiet_rate_multiplier),
      quiet_sojourn_gaps_(quiet_sojourn_gaps),
      burst_sojourn_gaps_(burst_sojourn_gaps) {
  CONTENDER_CHECK(burst_rate_multiplier_ > 0.0);
  CONTENDER_CHECK(quiet_rate_multiplier_ > 0.0);
  CONTENDER_CHECK(quiet_sojourn_gaps_ > 0.0);
  CONTENDER_CHECK(burst_sojourn_gaps_ > 0.0);
}

void FlashCrowd::FillTenantStream(
    const std::vector<units::Seconds>& reference_latencies,
    const ScenarioParams& params, const TenantPlan& plan, Rng* rng,
    std::vector<sched::Request>* out,
    std::map<std::string, double>* stats) const {
  // 2-state MMPP. Sojourn times are exponential, so discarding the
  // partial gap at a state switch and redrawing from the new state's rate
  // is distributionally exact (memorylessness) — and keeps every draw
  // flowing through the one seeded Rng in a fixed order.
  units::Seconds clock;
  bool burst = false;
  units::Seconds next_switch =
      clock + ExponentialGap(rng, plan.mean_gap * quiet_sojourn_gaps_);
  double switches = 0.0;
  double burst_requests = 0.0;
  for (int k = 0; k < plan.num_requests; ++k) {
    bool emitted_at_clock = false;
    if (!plan.gap_before_first && k == 0) {
      // Single-node contract: the stream starts at t = 0.
      emitted_at_clock = true;
    }
    while (!emitted_at_clock) {
      const double multiplier =
          burst ? burst_rate_multiplier_ : quiet_rate_multiplier_;
      const units::Seconds candidate =
          clock + ExponentialGap(rng, plan.mean_gap * (1.0 / multiplier));
      if (candidate < next_switch) {
        clock = candidate;
        emitted_at_clock = true;
        break;
      }
      clock = next_switch;
      burst = !burst;
      switches += 1.0;
      next_switch =
          clock + ExponentialGap(rng, plan.mean_gap * (burst
                                                           ? burst_sojourn_gaps_
                                                           : quiet_sojourn_gaps_));
    }
    sched::Request r;
    r.template_index = UniformTemplate(rng, plan.templates);
    r.arrival_time = clock;
    r.deadline = MaybeDeadline(
        rng, params.deadline_probability, params.min_slack, params.max_slack,
        clock, reference_latencies[static_cast<size_t>(r.template_index)]);
    out->push_back(r);
    if (burst) burst_requests += 1.0;
  }
  (*stats)["mmpp.switches"] += switches;
  (*stats)["mmpp.burst_requests"] += burst_requests;
}

// ---------------------------------------------------------------------------
// HeavyTailTenants

HeavyTailTenants::HeavyTailTenants(double min_rate_skew, double template_skew)
    : min_rate_skew_(min_rate_skew), template_skew_(template_skew) {
  CONTENDER_CHECK(min_rate_skew_ >= 0.0);
  CONTENDER_CHECK(template_skew_ >= 0.0);
}

double HeavyTailTenants::TenantRateSkew(const ScenarioParams& params) const {
  // NaN propagates so the driver's skew validation still rejects it.
  if (!(params.skew >= 0.0)) return params.skew;
  return std::max(params.skew, min_rate_skew_);
}

void HeavyTailTenants::FillTenantStream(
    const std::vector<units::Seconds>& reference_latencies,
    const ScenarioParams& params, const TenantPlan& plan, Rng* rng,
    std::vector<sched::Request>* out,
    std::map<std::string, double>* stats) const {
  // Zipf over the tenant's window by position: weight(j) ∝ (j+1)^-s.
  std::vector<double> cumulative(plan.templates.size());
  double total = 0.0;
  for (size_t j = 0; j < plan.templates.size(); ++j) {
    total += std::pow(static_cast<double>(j + 1), -template_skew_);
    cumulative[j] = total;
  }
  for (double& c : cumulative) c /= total;

  double head_requests = 0.0;
  units::Seconds clock;
  for (int k = 0; k < plan.num_requests; ++k) {
    sched::Request r;
    const size_t pick = CumulativeDraw(rng, cumulative);
    r.template_index = plan.templates[pick];
    if (pick == 0) head_requests += 1.0;
    if (plan.gap_before_first || k > 0) {
      clock += ExponentialGap(rng, plan.mean_gap);
    }
    r.arrival_time = clock;
    r.deadline = MaybeDeadline(
        rng, params.deadline_probability, params.min_slack, params.max_slack,
        clock, reference_latencies[static_cast<size_t>(r.template_index)]);
    out->push_back(r);
  }
  (*stats)["zipf.head_requests"] += head_requests;
}

// ---------------------------------------------------------------------------
// AdHocNovel

AdHocNovel::AdHocNovel(double novel_probability)
    : novel_probability_(novel_probability) {
  CONTENDER_CHECK(novel_probability_ >= 0.0 && novel_probability_ <= 1.0);
}

std::vector<int> AdHocNovel::NovelTemplates(int num_templates) {
  CONTENDER_CHECK(num_templates > 0);
  const int held_out = std::max(1, num_templates / 5);
  std::vector<int> novel;
  novel.reserve(static_cast<size_t>(held_out));
  for (int t = num_templates - held_out; t < num_templates; ++t) {
    novel.push_back(t);
  }
  return novel;
}

void AdHocNovel::FillTenantStream(
    const std::vector<units::Seconds>& reference_latencies,
    const ScenarioParams& params, const TenantPlan& plan, Rng* rng,
    std::vector<sched::Request>* out,
    std::map<std::string, double>* stats) const {
  const std::vector<int> novel =
      NovelTemplates(static_cast<int>(reference_latencies.size()));
  // Base pool: the tenant's window minus the held-out slice. A window
  // living entirely inside the held-out slice falls back to the window
  // itself (every request is then novel-by-construction).
  std::vector<int> base;
  for (int t : plan.templates) {
    if (!std::binary_search(novel.begin(), novel.end(), t)) {
      base.push_back(t);
    }
  }
  const bool window_all_novel = base.empty();
  if (window_all_novel) base = plan.templates;

  double novel_requests = 0.0;
  units::Seconds clock;
  for (int k = 0; k < plan.num_requests; ++k) {
    sched::Request r;
    // Draw order: novel-coin, template, gap, deadline.
    const bool inject =
        novel_probability_ > 0.0 && rng->Uniform01() < novel_probability_;
    if (inject) {
      r.template_index = UniformTemplate(rng, novel);
    } else {
      r.template_index = UniformTemplate(rng, base);
    }
    if (inject || window_all_novel) novel_requests += 1.0;
    if (plan.gap_before_first || k > 0) {
      clock += ExponentialGap(rng, plan.mean_gap);
    }
    r.arrival_time = clock;
    r.deadline = MaybeDeadline(
        rng, params.deadline_probability, params.min_slack, params.max_slack,
        clock, reference_latencies[static_cast<size_t>(r.template_index)]);
    out->push_back(r);
  }
  (*stats)["adhoc.novel_requests"] += novel_requests;
}

// ---------------------------------------------------------------------------
// MixedRefresh

MixedRefresh::MixedRefresh(double period_gaps, int storm_size)
    : period_gaps_(period_gaps), storm_size_(storm_size) {
  CONTENDER_CHECK(period_gaps_ > 0.0);
  CONTENDER_CHECK(storm_size_ > 0);
}

std::vector<int> MixedRefresh::RefreshTemplates(int num_templates) {
  CONTENDER_CHECK(num_templates > 0);
  const int width = std::max(1, num_templates / 10);
  std::vector<int> refresh;
  refresh.reserve(static_cast<size_t>(width));
  for (int t = 0; t < width; ++t) refresh.push_back(t);
  return refresh;
}

void MixedRefresh::FillTenantStream(
    const std::vector<units::Seconds>& reference_latencies,
    const ScenarioParams& params, const TenantPlan& plan, Rng* rng,
    std::vector<sched::Request>* out,
    std::map<std::string, double>* stats) const {
  const std::vector<int> refresh =
      RefreshTemplates(static_cast<int>(reference_latencies.size()));
  // OLAP pool: the window minus the refresh set (falling back to the
  // whole window when the window is nothing but refresh templates).
  std::vector<int> olap;
  for (int t : plan.templates) {
    if (!std::binary_search(refresh.begin(), refresh.end(), t)) {
      olap.push_back(t);
    }
  }
  if (olap.empty()) olap = plan.templates;

  // Storms fire at absolute multiples of the period (not offsets into the
  // tenant's own stream), so in fleet mode every tenant's refresh burst
  // lands at the same instant — a genuinely synchronized ETL window.
  const units::Seconds period = params.mean_interarrival * period_gaps_;
  // Requests inside a storm are spaced one millisecond apart so queue
  // order stays deterministic without colliding arrivals.
  const units::Seconds storm_spacing(1e-3);
  units::Seconds next_storm = period;
  units::Seconds clock;
  double storm_requests = 0.0;
  int emitted = 0;
  bool first = true;
  while (emitted < plan.num_requests) {
    units::Seconds candidate = clock;
    if (plan.gap_before_first || !first) {
      candidate = clock + ExponentialGap(rng, plan.mean_gap);
    }
    first = false;
    if (candidate >= next_storm) {
      for (int j = 0; j < storm_size_ && emitted < plan.num_requests;
           ++j, ++emitted) {
        sched::Request r;
        r.template_index = UniformTemplate(rng, refresh);
        r.arrival_time = next_storm + storm_spacing * static_cast<double>(j);
        r.deadline = MaybeDeadline(rng, params.deadline_probability,
                                   params.min_slack, params.max_slack,
                                   r.arrival_time,
                                   reference_latencies[static_cast<size_t>(
                                       r.template_index)]);
        out->push_back(r);
        storm_requests += 1.0;
      }
      clock = next_storm;
      next_storm += period;
      continue;
    }
    clock = candidate;
    sched::Request r;
    r.template_index = UniformTemplate(rng, olap);
    r.arrival_time = clock;
    r.deadline = MaybeDeadline(
        rng, params.deadline_probability, params.min_slack, params.max_slack,
        clock, reference_latencies[static_cast<size_t>(r.template_index)]);
    out->push_back(r);
    ++emitted;
  }
  (*stats)["refresh.storm_requests"] += storm_requests;
}

// ---------------------------------------------------------------------------
// Registry

// Instance() lives here, next to the built-in registrations, so any
// binary that touches the registry links this translation unit and the
// static registrars below run — a static-library build can never observe
// an empty registry (see scenario.h).
ScenarioRegistry& ScenarioRegistry::Instance() {
  static ScenarioRegistry* registry = new ScenarioRegistry();
  return *registry;
}

CONTENDER_REGISTER_SCENARIO(PoissonSteady)
CONTENDER_REGISTER_SCENARIO(DiurnalCycle)
CONTENDER_REGISTER_SCENARIO(FlashCrowd)
CONTENDER_REGISTER_SCENARIO(HeavyTailTenants)
CONTENDER_REGISTER_SCENARIO(AdHocNovel)
CONTENDER_REGISTER_SCENARIO(MixedRefresh)

}  // namespace contender::scenario

#include "scenario/scenario.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "util/logging.h"

namespace contender::scenario {

namespace {

/// Merged-stream order: arrival, then tenant, then the tenant-local draw
/// index — fully deterministic even when two tenants draw the same
/// instant. Bit-exact to the fleet population merge.
struct Draw {
  sched::Request request;  // request_id unset until the final pass
  int tenant_seq = 0;
};

bool DrawBefore(const Draw& a, const Draw& b) {
  if (a.request.arrival_time != b.request.arrival_time) {
    return a.request.arrival_time < b.request.arrival_time;
  }
  if (a.request.tenant_id != b.request.tenant_id) {
    return a.request.tenant_id < b.request.tenant_id;
  }
  return a.tenant_seq < b.tenant_seq;
}

uint64_t FnvMix(uint64_t hash, uint64_t value) {
  for (int byte = 0; byte < 8; ++byte) {
    hash ^= (value >> (byte * 8)) & 0xffULL;
    hash *= 0x100000001b3ULL;  // FNV-1a 64-bit prime
  }
  return hash;
}

uint64_t FnvMixDouble(uint64_t hash, double value) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  return FnvMix(hash, bits);
}

}  // namespace

uint64_t TraceDigest(const std::vector<sched::Request>& requests) {
  uint64_t hash = 0xcbf29ce484222325ULL;  // FNV-1a 64-bit offset basis
  for (const sched::Request& r : requests) {
    hash = FnvMix(hash, static_cast<uint64_t>(r.request_id));
    hash = FnvMix(hash, static_cast<uint64_t>(r.template_index));
    hash = FnvMix(hash, static_cast<uint64_t>(r.tenant_id));
    hash = FnvMixDouble(hash, r.arrival_time.value());
    hash = FnvMix(hash, r.deadline.has_value() ? 1u : 0u);
    if (r.deadline.has_value()) {
      hash = FnvMixDouble(hash, r.deadline->value());
    }
  }
  return hash;
}

double Scenario::TenantRateSkew(const ScenarioParams& params) const {
  return params.skew;
}

Status Scenario::ValidateExtra(const ScenarioParams& params) const {
  (void)params;
  return Status::OK();
}

StatusOr<ScenarioTrace> Scenario::GenerateTrace(
    const std::vector<units::Seconds>& reference_latencies,
    const ScenarioParams& params) const {
  return Generate(reference_latencies, params, /*fleet_mode=*/false);
}

StatusOr<ScenarioTrace> Scenario::GenerateFleetTrace(
    const std::vector<units::Seconds>& reference_latencies,
    const ScenarioParams& params) const {
  return Generate(reference_latencies, params, /*fleet_mode=*/true);
}

StatusOr<ScenarioTrace> Scenario::Generate(
    const std::vector<units::Seconds>& reference_latencies,
    const ScenarioParams& params, bool fleet_mode) const {
  const std::string who = name();
  if (reference_latencies.empty()) {
    return Status::InvalidArgument(who + ": need at least one template");
  }
  if (params.num_requests < 0) {
    return Status::InvalidArgument(who + ": num_requests must be >= 0");
  }
  // A non-positive mean gap means an undefined or non-positive arrival
  // rate; NaN also fails this comparison.
  if (!(params.mean_interarrival.value() > 0.0)) {
    return Status::InvalidArgument(
        who + ": mean_interarrival must be positive "
              "(non-positive arrival rate)");
  }
  if (params.deadline_probability < 0.0 ||
      params.deadline_probability > 1.0) {
    return Status::InvalidArgument(
        who + ": deadline_probability outside [0, 1]");
  }
  if (params.max_slack < params.min_slack) {
    return Status::InvalidArgument(who + ": max_slack below min_slack");
  }
  const int num_templates = static_cast<int>(reference_latencies.size());
  if (fleet_mode) {
    if (params.num_tenants < 1) {
      return Status::InvalidArgument(who + ": num_tenants must be >= 1");
    }
    if (!(TenantRateSkew(params) >= 0.0)) {  // NaN also fails
      return Status::InvalidArgument(who + ": skew must be >= 0");
    }
    if (params.templates_per_tenant < 0 ||
        params.templates_per_tenant > num_templates) {
      return Status::InvalidArgument(
          who + ": templates_per_tenant outside [0, templates]");
    }
  }
  CONTENDER_RETURN_IF_ERROR(ValidateExtra(params));

  ScenarioTrace trace;
  std::vector<TenantPlan> plans;
  std::vector<uint64_t> tenant_seeds;

  if (!fleet_mode) {
    // Single-node mode: one tenant over the whole workload, seeded
    // directly (no root.Next() derivation) and starting at t = 0 —
    // the sched::GenerateArrivals contract.
    TenantPlan plan;
    plan.tenant_id = 0;
    plan.rate_share = 1.0;
    plan.num_requests = params.num_requests;
    plan.templates.resize(static_cast<size_t>(num_templates));
    for (int t = 0; t < num_templates; ++t) {
      plan.templates[static_cast<size_t>(t)] = t;
    }
    plan.mean_gap = params.mean_interarrival;
    plan.gap_before_first = false;
    plans.push_back(std::move(plan));
    tenant_seeds.push_back(params.seed);
  } else {
    const double skew = TenantRateSkew(params);
    plans.resize(static_cast<size_t>(params.num_tenants));

    // Zipf-like rate shares: share(i) ∝ 1/(i+1)^skew, with
    // largest-remainder apportionment of num_requests over the shares —
    // bit-exact to the fleet population planner.
    double weight_sum = 0.0;
    for (int i = 0; i < params.num_tenants; ++i) {
      weight_sum += std::pow(static_cast<double>(i + 1), -skew);
    }
    std::vector<double> exact(static_cast<size_t>(params.num_tenants));
    std::vector<int> counts(static_cast<size_t>(params.num_tenants));
    int assigned = 0;
    for (int i = 0; i < params.num_tenants; ++i) {
      const double share =
          std::pow(static_cast<double>(i + 1), -skew) / weight_sum;
      exact[static_cast<size_t>(i)] = share * params.num_requests;
      counts[static_cast<size_t>(i)] =
          static_cast<int>(std::floor(exact[static_cast<size_t>(i)]));
      assigned += counts[static_cast<size_t>(i)];
      plans[static_cast<size_t>(i)].tenant_id = i;
      plans[static_cast<size_t>(i)].rate_share = share;
    }
    // Remainder by descending fractional part (ties to the lower tenant
    // id).
    std::vector<int> order(static_cast<size_t>(params.num_tenants));
    for (int i = 0; i < params.num_tenants; ++i) {
      order[static_cast<size_t>(i)] = i;
    }
    std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
      const double fa = exact[static_cast<size_t>(a)] -
                        std::floor(exact[static_cast<size_t>(a)]);
      const double fb = exact[static_cast<size_t>(b)] -
                        std::floor(exact[static_cast<size_t>(b)]);
      return fa > fb;
    });
    for (int r = 0; r < params.num_requests - assigned; ++r) {
      ++counts[static_cast<size_t>(
          order[static_cast<size_t>(r % params.num_tenants)])];
    }

    // Rotating contiguous template windows so adjacent tenants overlap.
    const int block = params.templates_per_tenant == 0
                          ? num_templates
                          : params.templates_per_tenant;
    for (int i = 0; i < params.num_tenants; ++i) {
      TenantPlan& plan = plans[static_cast<size_t>(i)];
      plan.num_requests = counts[static_cast<size_t>(i)];
      const int start = params.templates_per_tenant == 0
                            ? 0
                            : (i * std::max(1, block / 2)) % num_templates;
      for (int k = 0; k < block; ++k) {
        plan.templates.push_back((start + k) % num_templates);
      }
      std::sort(plan.templates.begin(), plan.templates.end());
      plan.templates.erase(
          std::unique(plan.templates.begin(), plan.templates.end()),
          plan.templates.end());
      // The merged stream has the requested aggregate mean gap when every
      // tenant contributes at its rate share.
      plan.mean_gap = params.mean_interarrival * (1.0 / plan.rate_share);
      plan.gap_before_first = true;
    }

    // Pre-derive every tenant's seed in tenant order before any stream is
    // drawn (the PR 1 idiom: no interleaved Rng state).
    Rng root(params.seed);
    tenant_seeds.reserve(static_cast<size_t>(params.num_tenants));
    for (int i = 0; i < params.num_tenants; ++i) {
      tenant_seeds.push_back(root.Next());
    }
  }

  std::vector<Draw> draws;
  draws.reserve(static_cast<size_t>(params.num_requests));
  for (size_t i = 0; i < plans.size(); ++i) {
    const TenantPlan& plan = plans[i];
    trace.tenants.push_back(TenantTraffic{plan.tenant_id, plan.rate_share,
                                          plan.num_requests,
                                          plan.templates});
    if (plan.num_requests == 0) continue;
    Rng rng(tenant_seeds[i]);
    std::vector<sched::Request> stream;
    stream.reserve(static_cast<size_t>(plan.num_requests));
    FillTenantStream(reference_latencies, params, plan, &rng, &stream,
                     &trace.stats);
    CONTENDER_CHECK(static_cast<int>(stream.size()) == plan.num_requests)
        << name() << ": tenant " << plan.tenant_id << " emitted "
        << stream.size() << " of " << plan.num_requests << " requests";
    for (size_t k = 0; k < stream.size(); ++k) {
      Draw d;
      d.request = stream[k];
      d.request.tenant_id = plan.tenant_id;
      d.tenant_seq = static_cast<int>(k);
      draws.push_back(std::move(d));
    }
  }
  std::stable_sort(draws.begin(), draws.end(), DrawBefore);

  trace.requests.reserve(draws.size());
  for (size_t id = 0; id < draws.size(); ++id) {
    draws[id].request.request_id = static_cast<int>(id);
    trace.requests.push_back(draws[id].request);
  }
  return trace;
}

void ScenarioRegistry::Register(std::unique_ptr<Scenario> scenario) {
  CONTENDER_CHECK(scenario != nullptr);
  const std::string key = scenario->name();
  MutexLock lock(&mutex_);
  const bool inserted =
      scenarios_.emplace(key, std::move(scenario)).second;
  CONTENDER_CHECK(inserted) << "duplicate scenario name: " << key;
}

const Scenario* ScenarioRegistry::Find(const std::string& name) const {
  MutexLock lock(&mutex_);
  auto it = scenarios_.find(name);
  return it == scenarios_.end() ? nullptr : it->second.get();
}

std::vector<const Scenario*> ScenarioRegistry::All() const {
  MutexLock lock(&mutex_);
  std::vector<const Scenario*> all;
  all.reserve(scenarios_.size());
  for (const auto& [name, scenario] : scenarios_) {
    all.push_back(scenario.get());
  }
  return all;  // std::map iteration order = sorted by name
}

const Scenario* FindScenario(const std::string& name) {
  return ScenarioRegistry::Instance().Find(name);
}

std::vector<const Scenario*> AllScenarios() {
  return ScenarioRegistry::Instance().All();
}

}  // namespace contender::scenario

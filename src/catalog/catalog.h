// A TPC-DS-like star schema at scale factor 100: seven fact tables and the
// dimension tables the workload touches, with on-disk sizes approximating
// PostgreSQL heap sizes for the 100 GB configuration the paper evaluates.

#ifndef CONTENDER_CATALOG_CATALOG_H_
#define CONTENDER_CATALOG_CATALOG_H_

#include <string>
#include <vector>

#include "sim/query_spec.h"
#include "util/statusor.h"

namespace contender {

/// A relation in the schema.
struct TableDef {
  sim::TableId id = sim::kNoTable;
  std::string name;
  double bytes = 0.0;
  uint64_t rows = 0;
  /// Fact tables are too large to cache and are shared-scan eligible;
  /// dimensions are cacheable in the buffer pool.
  bool is_fact = false;
};

/// Immutable table registry.
class Catalog {
 public:
  /// The TPC-DS-like schema at SF = 100.
  static Catalog TpcDs100();

  /// The schema at an arbitrary scale factor (paper §8 future work:
  /// prediction on an expanding database). Fact tables grow linearly with
  /// the scale factor; dimensions grow sublinearly (customer-driven ones
  /// at ~sqrt scale, static ones not at all), approximating dsdgen.
  static Catalog TpcDs(double scale_factor);

  /// Builds a catalog from explicit definitions (ids are assigned in order).
  explicit Catalog(std::vector<TableDef> tables);

  const std::vector<TableDef>& tables() const { return tables_; }

  StatusOr<TableDef> FindByName(const std::string& name) const;
  StatusOr<TableDef> FindById(sim::TableId id) const;

  /// Convenience: must-succeed lookup (CHECK-fails on a bad name).
  const TableDef& Get(const std::string& name) const;

  std::vector<TableDef> FactTables() const;
  double TotalBytes() const;

 private:
  std::vector<TableDef> tables_;
};

}  // namespace contender

#endif  // CONTENDER_CATALOG_CATALOG_H_

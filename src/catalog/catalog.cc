#include "catalog/catalog.h"

#include <cmath>

#include "sim/config.h"
#include "util/logging.h"

namespace contender {

using sim::kGB;
using sim::kMB;

Catalog::Catalog(std::vector<TableDef> tables) : tables_(std::move(tables)) {
  for (size_t i = 0; i < tables_.size(); ++i) {
    tables_[i].id = static_cast<sim::TableId>(i);
  }
}

Catalog Catalog::TpcDs(double scale_factor) {
  Catalog base = TpcDs100();
  const double f = scale_factor / 100.0;
  std::vector<TableDef> scaled = base.tables();
  for (TableDef& t : scaled) {
    double growth;
    if (t.is_fact) {
      growth = f;  // fact tables scale linearly with SF
    } else if (t.name == "customer" || t.name == "customer_address" ||
               t.name == "customer_demographics" || t.name == "item" ||
               t.name == "catalog_page" || t.name == "web_page") {
      growth = std::sqrt(f);  // entity dimensions grow sublinearly
    } else {
      growth = 1.0;  // date/time/store/... are scale-invariant
    }
    t.bytes *= growth;
    t.rows = static_cast<uint64_t>(static_cast<double>(t.rows) * growth);
  }
  return Catalog(std::move(scaled));
}

Catalog Catalog::TpcDs100() {
  // Sizes approximate PostgreSQL heap sizes for TPC-DS SF=100.
  std::vector<TableDef> defs = {
      // Fact tables.
      {0, "store_sales", 37.0 * kGB, 288000000, true},
      {0, "catalog_sales", 20.5 * kGB, 144000000, true},
      {0, "web_sales", 10.2 * kGB, 72000000, true},
      {0, "inventory", 6.1 * kGB, 399330000, true},
      {0, "store_returns", 3.1 * kGB, 28800000, true},
      {0, "catalog_returns", 2.3 * kGB, 14400000, true},
      {0, "web_returns", 1.1 * kGB, 7200000, true},
      // Dimensions.
      {0, "customer", 1.4 * kGB, 2000000, false},
      {0, "customer_address", 220.0 * kMB, 1000000, false},
      {0, "customer_demographics", 160.0 * kMB, 1920800, false},
      {0, "item", 58.0 * kMB, 204000, false},
      {0, "date_dim", 12.0 * kMB, 73049, false},
      {0, "time_dim", 8.6 * kMB, 86400, false},
      {0, "store", 0.3 * kMB, 402, false},
      {0, "warehouse", 0.1 * kMB, 15, false},
      {0, "promotion", 0.4 * kMB, 1000, false},
      {0, "household_demographics", 0.6 * kMB, 7200, false},
      {0, "income_band", 0.1 * kMB, 20, false},
      {0, "ship_mode", 0.1 * kMB, 20, false},
      {0, "reason", 0.1 * kMB, 55, false},
      {0, "call_center", 0.1 * kMB, 30, false},
      {0, "catalog_page", 4.5 * kMB, 20400, false},
      {0, "web_site", 0.1 * kMB, 24, false},
      {0, "web_page", 0.5 * kMB, 2040, false},
  };
  return Catalog(std::move(defs));
}

StatusOr<TableDef> Catalog::FindByName(const std::string& name) const {
  for (const TableDef& t : tables_) {
    if (t.name == name) return t;
  }
  return Status::NotFound("table not in catalog: " + name);
}

StatusOr<TableDef> Catalog::FindById(sim::TableId id) const {
  if (id < 0 || static_cast<size_t>(id) >= tables_.size()) {
    return Status::NotFound("table id not in catalog");
  }
  return tables_[static_cast<size_t>(id)];
}

const TableDef& Catalog::Get(const std::string& name) const {
  for (const TableDef& t : tables_) {
    if (t.name == name) return t;
  }
  CONTENDER_CHECK(false) << "unknown table: " << name;
  static TableDef dummy;
  return dummy;
}

std::vector<TableDef> Catalog::FactTables() const {
  std::vector<TableDef> out;
  for (const TableDef& t : tables_) {
    if (t.is_fact) out.push_back(t);
  }
  return out;
}

double Catalog::TotalBytes() const {
  double s = 0.0;
  for (const TableDef& t : tables_) s += t.bytes;
  return s;
}

}  // namespace contender

// Query execution plan (QEP) trees. Templates build a PostgreSQL-style
// operator tree; the plan compiler lowers it to simulator phases and the
// ML baselines extract per-operator feature vectors from it (paper §3).

#ifndef CONTENDER_WORKLOAD_QUERY_PLAN_H_
#define CONTENDER_WORKLOAD_QUERY_PLAN_H_

#include <functional>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "sim/query_spec.h"
#include "util/units.h"

namespace contender {

/// Plan operator kinds (a subset of PostgreSQL 8.4's executor nodes).
enum class PlanNodeType {
  kSeqScan = 0,
  kIndexScan,
  kBitmapHeapScan,
  kFilter,
  kHash,
  kHashJoin,
  kMergeJoin,
  kNestedLoopJoin,
  kSort,
  kHashAggregate,
  kGroupAggregate,
  kWindowAgg,
  kMaterialize,
  kAppend,
  kLimit,
  kNumTypes,  // sentinel
};

/// Human-readable operator name ("Seq Scan", "Hash Join", ...).
const char* PlanNodeTypeName(PlanNodeType type);

/// One operator in a plan tree. Children execute before (or beneath) the
/// operator; resource annotations drive the compiler.
struct PlanNode {
  PlanNodeType type = PlanNodeType::kSeqScan;
  /// Scanned relation for scan nodes; kNoTable otherwise.
  sim::TableId table = sim::kNoTable;
  /// Fraction of the relation read by a sequential scan.
  double scan_fraction = 1.0;
  /// Random-access bytes for index/bitmap scans.
  double rnd_bytes = 0.0;
  /// Optimizer cardinality estimate (output rows).
  double rows = 0.0;
  /// CPU work attributable to this operator.
  double cpu_seconds = 0.0;
  /// Working memory of blocking operators (hash table, sort buffer).
  double mem_bytes = 0.0;
  std::vector<PlanNode> children;
};

// ---------------------------------------------------------------------------
// Builder helpers (PostgreSQL-flavoured constructors).

/// Full or partial sequential scan of `t`.
PlanNode SeqScan(const TableDef& t, units::Fraction fraction,
                 double rows_out);

/// Index scan performing `rnd_bytes` of scattered reads.
PlanNode IndexScan(const TableDef& t, double rnd_bytes, double rows_out);

/// Bitmap heap scan: semi-sequential; modeled as mostly random I/O.
PlanNode BitmapHeapScan(const TableDef& t, double rnd_bytes, double rows_out);

/// Hash join; the build side is wrapped in an explicit Hash node whose
/// memory footprint is `build_mem_bytes`.
PlanNode HashJoin(PlanNode build, PlanNode probe, double rows_out,
                  double build_mem_bytes);

PlanNode MergeJoin(PlanNode outer, PlanNode inner, double rows_out);

PlanNode NestedLoopJoin(PlanNode outer, PlanNode inner, double rows_out);

/// Blocking sort with `mem_bytes` of sort buffer.
PlanNode Sort(PlanNode child, double mem_bytes);

/// Blocking hash aggregate with `mem_bytes` of hash table.
PlanNode HashAggregate(PlanNode child, double rows_out, double mem_bytes);

/// Pipelined aggregate over sorted input.
PlanNode GroupAggregate(PlanNode child, double rows_out);

PlanNode WindowAgg(PlanNode child, double rows_out);
PlanNode Materialize(PlanNode child, double mem_bytes);
PlanNode Append(std::vector<PlanNode> children, double rows_out);
PlanNode Limit(PlanNode child, double rows_out);
PlanNode Filter(PlanNode child, double rows_out);

// ---------------------------------------------------------------------------
// Plan statistics.

/// Number of operators in the tree.
int CountPlanSteps(const PlanNode& root);

/// Sum of cardinality estimates over all operators ("records accessed").
double SumPlanRows(const PlanNode& root);

/// Fact tables sequentially scanned anywhere in the plan (deduplicated).
std::vector<sim::TableId> FactTablesScanned(const PlanNode& root,
                                            const Catalog& catalog);

/// Depth-first visit of every node.
void VisitPlan(const PlanNode& root,
               const std::function<void(const PlanNode&)>& fn);

}  // namespace contender

#endif  // CONTENDER_WORKLOAD_QUERY_PLAN_H_

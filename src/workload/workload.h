// The workload: a catalog plus an ordered set of query templates, with
// per-instance parameter variation.

#ifndef CONTENDER_WORKLOAD_WORKLOAD_H_
#define CONTENDER_WORKLOAD_WORKLOAD_H_

#include <vector>

#include "catalog/catalog.h"
#include "sim/query_spec.h"
#include "util/random.h"
#include "workload/plan_compiler.h"
#include "workload/templates.h"

namespace contender {

/// Immutable workload facade used by the sampler, the experiments and the
/// examples. Template positions ("indices") are stable; paper ids are
/// available through tmpl(i).id.
class Workload {
 public:
  Workload(Catalog catalog, std::vector<QueryTemplate> templates);

  /// The paper's setup: TPC-DS SF=100 with the 25 moderate templates.
  static Workload Paper();

  const Catalog& catalog() const { return catalog_; }
  int size() const { return static_cast<int>(templates_.size()); }
  const QueryTemplate& tmpl(int index) const {
    return templates_[static_cast<size_t>(index)];
  }

  /// Index of the template with the given paper id; -1 when absent.
  int IndexOfId(int template_id) const;

  /// The nominal (optimizer-estimate) plan for a template.
  PlanNode NominalPlan(int index) const;

  /// Compiles an instance with randomly drawn predicate parameters.
  sim::QuerySpec Instantiate(int index, Rng* rng) const;

  /// Compiles the nominal instance (parameters at their expected values).
  sim::QuerySpec InstantiateNominal(int index) const;

  /// Draws the per-instance parameters (exposed for testing).
  static InstanceParams DrawParams(Rng* rng);

 private:
  Catalog catalog_;
  std::vector<QueryTemplate> templates_;
};

}  // namespace contender

#endif  // CONTENDER_WORKLOAD_WORKLOAD_H_

// Lowers a query plan tree to the simulator's phase list.
//
// The compiler walks the plan in executor order and cuts the operator
// stream into pipeline segments at blocking operators (Hash, Sort,
// HashAggregate, Materialize) and at scan boundaries. Each segment becomes
// one sim::Phase whose I/O, CPU and memory demands are the sums of its
// operators' annotations.

#ifndef CONTENDER_WORKLOAD_PLAN_COMPILER_H_
#define CONTENDER_WORKLOAD_PLAN_COMPILER_H_

#include "catalog/catalog.h"
#include "sim/query_spec.h"
#include "workload/query_plan.h"

namespace contender {

/// Per-instance parameter variation (template predicates differ between
/// instances; plans are compiled fresh for every execution).
struct InstanceParams {
  /// Scales selectivity-driven quantities: CPU, random I/O, memory
  /// footprints, and partial-scan fractions.
  double selectivity = 1.0;
  /// Scales all sequential scan volumes slightly (heap bloat, hint bits).
  double io_scale = 1.0;
};

/// Compiles `plan` into phases. `name`/`template_id` are carried into the
/// spec for accounting.
sim::QuerySpec CompilePlan(const PlanNode& plan, const Catalog& catalog,
                           const InstanceParams& params,
                           const std::string& name, int template_id);

}  // namespace contender

#endif  // CONTENDER_WORKLOAD_PLAN_COMPILER_H_

#include "workload/workload.h"

#include <algorithm>

namespace contender {

Workload::Workload(Catalog catalog, std::vector<QueryTemplate> templates)
    : catalog_(std::move(catalog)), templates_(std::move(templates)) {}

Workload Workload::Paper() {
  return Workload(Catalog::TpcDs100(), MakePaperTemplates());
}

int Workload::IndexOfId(int template_id) const {
  for (size_t i = 0; i < templates_.size(); ++i) {
    if (templates_[i].id == template_id) return static_cast<int>(i);
  }
  return -1;
}

PlanNode Workload::NominalPlan(int index) const {
  return templates_[static_cast<size_t>(index)].build(catalog_);
}

InstanceParams Workload::DrawParams(Rng* rng) {
  InstanceParams p;
  // Predicate parameters move selectivity-driven work by up to ±10%.
  p.selectivity = rng->Uniform(0.9, 1.1);
  // Scan volumes vary slightly between instances (bloat, hint bits).
  p.io_scale = std::clamp(rng->Normal(1.0, 0.03), 0.9, 1.1);
  return p;
}

sim::QuerySpec Workload::Instantiate(int index, Rng* rng) const {
  const QueryTemplate& t = templates_[static_cast<size_t>(index)];
  InstanceParams params = DrawParams(rng);
  return CompilePlan(t.build(catalog_), catalog_, params, t.name, t.id);
}

sim::QuerySpec Workload::InstantiateNominal(int index) const {
  const QueryTemplate& t = templates_[static_cast<size_t>(index)];
  return CompilePlan(t.build(catalog_), catalog_, InstanceParams{}, t.name,
                     t.id);
}

}  // namespace contender

#include "workload/templates.h"

#include "sim/config.h"

namespace contender {

namespace {

using sim::kGB;
using sim::kMB;

// Shorthand: a dimension hash-joined under a fact probe.
PlanNode DimJoin(const Catalog& c, PlanNode probe, const std::string& dim,
                 double dim_rows, double rows_out, double build_mem) {
  PlanNode build = SeqScan(c.Get(dim), units::Fraction::Clamp(1.0), dim_rows);
  return HashJoin(std::move(build), std::move(probe), rows_out, build_mem);
}

// TPC-DS q2: weekly sales rollup across catalog and web channels; unions
// two fact scans and sorts a very large intermediate (memory-intensive).
PlanNode BuildQ2(const Catalog& c) {
  PlanNode cs = SeqScan(c.Get("catalog_sales"), units::Fraction::Clamp(1.0), 144e6);
  PlanNode ws = SeqScan(c.Get("web_sales"), units::Fraction::Clamp(1.0), 72e6);
  PlanNode uni = Append({std::move(cs), std::move(ws)}, 216e6);
  PlanNode j = DimJoin(c, std::move(uni), "date_dim", 73049, 216e6, 8 * kMB);
  PlanNode sorted = Sort(std::move(j), 4.0 * kGB);
  return GroupAggregate(std::move(sorted), 10000);
}

// TPC-DS q8: store sales by store for customers in preferred zip codes.
PlanNode BuildQ8(const Catalog& c) {
  PlanNode cust = DimJoin(c, SeqScan(c.Get("customer"), units::Fraction::Clamp(1.0), 2e6),
                          "customer_address", 1e6, 1.8e6, 120 * kMB);
  PlanNode ss = SeqScan(c.Get("store_sales"), units::Fraction::Clamp(1.0), 288e6);
  PlanNode j1 = HashJoin(std::move(cust), std::move(ss), 50e6, 260 * kMB);
  PlanNode j2 = DimJoin(c, std::move(j1), "store", 402, 50e6, 0.1 * kMB);
  PlanNode j3 = DimJoin(c, std::move(j2), "date_dim", 73049, 12e6, 8 * kMB);
  PlanNode agg = HashAggregate(std::move(j3), 400, 60 * kMB);
  return Sort(std::move(agg), 1 * kMB);
}

// TPC-DS q15: catalog sales by customer zip for a quarter.
PlanNode BuildQ15(const Catalog& c) {
  PlanNode cs = SeqScan(c.Get("catalog_sales"), units::Fraction::Clamp(1.0), 144e6);
  PlanNode j1 = DimJoin(c, std::move(cs), "customer", 2e6, 36e6, 280 * kMB);
  PlanNode j2 =
      DimJoin(c, std::move(j1), "customer_address", 1e6, 36e6, 140 * kMB);
  PlanNode j3 = DimJoin(c, std::move(j2), "date_dim", 73049, 9e6, 8 * kMB);
  PlanNode agg = HashAggregate(std::move(j3), 50000, 40 * kMB);
  return Sort(std::move(agg), 4 * kMB);
}

// TPC-DS q17: store/catalog sales with returns — index-driven lookups on
// the returns and catalog side make this template random-I/O heavy.
PlanNode BuildQ17(const Catalog& c) {
  PlanNode ss = SeqScan(c.Get("store_sales"), units::Fraction::Clamp(0.55), 158e6);
  PlanNode sr = IndexScan(c.Get("store_returns"), 320 * kMB, 3.2e6);
  PlanNode j1 = HashJoin(std::move(sr), std::move(ss), 6e6, 300 * kMB);
  PlanNode csr = IndexScan(c.Get("catalog_sales"), 260 * kMB, 2.4e6);
  PlanNode j2 = HashJoin(std::move(csr), std::move(j1), 2e6, 220 * kMB);
  PlanNode j3 = DimJoin(c, std::move(j2), "item", 204000, 2e6, 60 * kMB);
  PlanNode j4 = DimJoin(c, std::move(j3), "date_dim", 73049, 1.5e6, 8 * kMB);
  PlanNode agg = HashAggregate(std::move(j4), 120000, 1.1 * kGB);
  return Sort(std::move(agg), 10 * kMB);
}

// TPC-DS q18: catalog sales by customer demographics.
PlanNode BuildQ18(const Catalog& c) {
  PlanNode cs = SeqScan(c.Get("catalog_sales"), units::Fraction::Clamp(1.0), 144e6);
  PlanNode j1 = DimJoin(c, std::move(cs), "customer_demographics", 1.92e6,
                        28e6, 170 * kMB);
  PlanNode j2 = DimJoin(c, std::move(j1), "customer", 2e6, 14e6, 280 * kMB);
  PlanNode j3 = DimJoin(c, std::move(j2), "item", 204000, 14e6, 60 * kMB);
  PlanNode j4 = DimJoin(c, std::move(j3), "date_dim", 73049, 4.5e6, 8 * kMB);
  PlanNode agg = HashAggregate(std::move(j4), 110000, 450 * kMB);
  return Sort(std::move(agg), 12 * kMB);
}

// TPC-DS q20: catalog sales by item class for a 30-day window.
PlanNode BuildQ20(const Catalog& c) {
  PlanNode cs = SeqScan(c.Get("catalog_sales"), units::Fraction::Clamp(1.0), 144e6);
  PlanNode j1 = DimJoin(c, std::move(cs), "item", 204000, 20e6, 60 * kMB);
  PlanNode j2 = DimJoin(c, std::move(j1), "date_dim", 73049, 5e6, 8 * kMB);
  PlanNode agg = GroupAggregate(Sort(std::move(j2), 140 * kMB), 60000);
  return Limit(std::move(agg), 100);
}

// TPC-DS q22: inventory quantity-on-hand rollup; a giant hash aggregate
// over the full inventory history makes this template memory-bound.
PlanNode BuildQ22(const Catalog& c) {
  PlanNode inv = SeqScan(c.Get("inventory"), units::Fraction::Clamp(1.0), 399e6);
  PlanNode j1 = DimJoin(c, std::move(inv), "item", 204000, 399e6, 60 * kMB);
  PlanNode j2 = DimJoin(c, std::move(j1), "date_dim", 73049, 98e6, 8 * kMB);
  PlanNode j3 = DimJoin(c, std::move(j2), "warehouse", 15, 98e6, 0.1 * kMB);
  // Rollup over (product_name, brand, class, category): large group state.
  PlanNode agg = HashAggregate(std::move(j3), 600000, 6.2 * kGB);
  PlanNode rollup = GroupAggregate(std::move(agg), 600000);
  return Limit(Sort(std::move(rollup), 90 * kMB), 100);
}

// TPC-DS q25: store/store-returns/catalog-sales chain via index lookups.
PlanNode BuildQ25(const Catalog& c) {
  PlanNode ss = SeqScan(c.Get("store_sales"), units::Fraction::Clamp(0.5), 144e6);
  PlanNode sr = IndexScan(c.Get("store_returns"), 400 * kMB, 4e6);
  PlanNode j1 = HashJoin(std::move(sr), std::move(ss), 7e6, 360 * kMB);
  PlanNode cs = IndexScan(c.Get("catalog_sales"), 350 * kMB, 3.2e6);
  PlanNode j2 = HashJoin(std::move(cs), std::move(j1), 2.4e6, 290 * kMB);
  PlanNode j3 = DimJoin(c, std::move(j2), "store", 402, 2.4e6, 0.1 * kMB);
  PlanNode j4 = DimJoin(c, std::move(j3), "item", 204000, 1.8e6, 60 * kMB);
  PlanNode agg = HashAggregate(std::move(j4), 90000, 1.0 * kGB);
  return Sort(std::move(agg), 8 * kMB);
}

// TPC-DS q26: catalog sales averaged by item for one demographic slice —
// a single pass over catalog_sales; I/O-bound.
PlanNode BuildQ26(const Catalog& c) {
  PlanNode cs = SeqScan(c.Get("catalog_sales"), units::Fraction::Clamp(1.0), 144e6);
  PlanNode j1 = DimJoin(c, std::move(cs), "customer_demographics", 1.92e6,
                        18e6, 170 * kMB);
  PlanNode j2 = DimJoin(c, std::move(j1), "date_dim", 73049, 4.6e6, 8 * kMB);
  PlanNode j3 = DimJoin(c, std::move(j2), "item", 204000, 4.6e6, 60 * kMB);
  PlanNode j4 = DimJoin(c, std::move(j3), "promotion", 1000, 1.1e6, 0.2 * kMB);
  PlanNode agg = HashAggregate(std::move(j4), 40000, 30 * kMB);
  return Limit(Sort(std::move(agg), 4 * kMB), 100);
}

// TPC-DS q27: store sales by item/state for one demographic slice.
PlanNode BuildQ27(const Catalog& c) {
  PlanNode ss = SeqScan(c.Get("store_sales"), units::Fraction::Clamp(1.0), 288e6);
  PlanNode j1 = DimJoin(c, std::move(ss), "customer_demographics", 1.92e6,
                        36e6, 170 * kMB);
  PlanNode j2 = DimJoin(c, std::move(j1), "date_dim", 73049, 9e6, 8 * kMB);
  PlanNode j3 = DimJoin(c, std::move(j2), "store", 402, 9e6, 0.1 * kMB);
  PlanNode j4 = DimJoin(c, std::move(j3), "item", 204000, 9e6, 60 * kMB);
  PlanNode agg = HashAggregate(std::move(j4), 120000, 110 * kMB);
  return Limit(Sort(std::move(agg), 12 * kMB), 100);
}

// TPC-DS q32: catalog sales with a correlated average lookup (random I/O).
PlanNode BuildQ32(const Catalog& c) {
  PlanNode cs = SeqScan(c.Get("catalog_sales"), units::Fraction::Clamp(1.0), 144e6);
  PlanNode sub = IndexScan(c.Get("catalog_sales"), 300 * kMB, 2.8e6);
  PlanNode subagg = HashAggregate(std::move(sub), 17000, 20 * kMB);
  PlanNode j1 = HashJoin(std::move(subagg), std::move(cs), 1.4e6, 20 * kMB);
  PlanNode j2 = DimJoin(c, std::move(j1), "item", 204000, 600000, 60 * kMB);
  PlanNode j3 = DimJoin(c, std::move(j2), "date_dim", 73049, 180000, 8 * kMB);
  return GroupAggregate(std::move(j3), 1);
}

// TPC-DS q33: manufacturer revenue across all three sales channels.
PlanNode BuildQ33(const Catalog& c) {
  auto channel = [&](const std::string& fact, double rows) {
    PlanNode f = SeqScan(c.Get(fact), units::Fraction::Clamp(1.0), rows);
    PlanNode j1 = DimJoin(c, std::move(f), "item", 204000, rows / 8,
                          60 * kMB);
    PlanNode j2 = DimJoin(c, std::move(j1), "customer_address", 1e6, rows / 24,
                          140 * kMB);
    PlanNode j3 =
        DimJoin(c, std::move(j2), "date_dim", 73049, rows / 90, 8 * kMB);
    return HashAggregate(std::move(j3), 6000, 20 * kMB);
  };
  PlanNode uni = Append({channel("store_sales", 288e6),
                         channel("catalog_sales", 144e6),
                         channel("web_sales", 72e6)},
                        18000);
  PlanNode agg = HashAggregate(std::move(uni), 6000, 1.25 * kGB);
  return Limit(Sort(std::move(agg), 2 * kMB), 100);
}

// TPC-DS q40: catalog sales vs returns around a date boundary.
PlanNode BuildQ40(const Catalog& c) {
  PlanNode cs = SeqScan(c.Get("catalog_sales"), units::Fraction::Clamp(1.0), 144e6);
  PlanNode cr = SeqScan(c.Get("catalog_returns"), units::Fraction::Clamp(1.0), 14.4e6);
  PlanNode j1 = HashJoin(std::move(cr), std::move(cs), 14e6, 260 * kMB);
  PlanNode j2 = DimJoin(c, std::move(j1), "warehouse", 15, 14e6, 0.1 * kMB);
  PlanNode j3 = DimJoin(c, std::move(j2), "item", 204000, 3.4e6, 60 * kMB);
  PlanNode j4 = DimJoin(c, std::move(j3), "date_dim", 73049, 1.2e6, 8 * kMB);
  PlanNode agg = HashAggregate(std::move(j4), 80000, 70 * kMB);
  return Limit(Sort(std::move(agg), 8 * kMB), 100);
}

// TPC-DS q46: store sales to specific households by city, sorted widely.
PlanNode BuildQ46(const Catalog& c) {
  PlanNode ss = SeqScan(c.Get("store_sales"), units::Fraction::Clamp(1.0), 288e6);
  PlanNode j1 = DimJoin(c, std::move(ss), "household_demographics", 7200,
                        48e6, 1 * kMB);
  PlanNode j2 =
      DimJoin(c, std::move(j1), "customer_address", 1e6, 48e6, 140 * kMB);
  PlanNode j3 = DimJoin(c, std::move(j2), "date_dim", 73049, 12e6, 8 * kMB);
  PlanNode j4 = DimJoin(c, std::move(j3), "store", 402, 12e6, 0.1 * kMB);
  PlanNode agg = HashAggregate(std::move(j4), 9e6, 380 * kMB);
  PlanNode j5 = DimJoin(c, std::move(agg), "customer", 2e6, 9e6, 280 * kMB);
  return Sort(std::move(j5), 1.3 * kGB);
}

// TPC-DS q56: item revenue across all three channels (ids in a list).
PlanNode BuildQ56(const Catalog& c) {
  auto channel = [&](const std::string& fact, double rows) {
    PlanNode f = SeqScan(c.Get(fact), units::Fraction::Clamp(1.0), rows);
    PlanNode j1 = DimJoin(c, std::move(f), "item", 204000, rows / 10,
                          60 * kMB);
    PlanNode j2 = DimJoin(c, std::move(j1), "customer_address", 1e6,
                          rows / 30, 140 * kMB);
    PlanNode j3 =
        DimJoin(c, std::move(j2), "date_dim", 73049, rows / 100, 8 * kMB);
    return HashAggregate(std::move(j3), 9000, 25 * kMB);
  };
  PlanNode uni = Append({channel("store_sales", 288e6),
                         channel("catalog_sales", 144e6),
                         channel("web_sales", 72e6)},
                        27000);
  PlanNode agg = HashAggregate(std::move(uni), 9000, 1.2 * kGB);
  return Limit(Sort(std::move(agg), 3 * kMB), 100);
}

// TPC-DS q60: category revenue across all three channels.
PlanNode BuildQ60(const Catalog& c) {
  auto channel = [&](const std::string& fact, double rows) {
    PlanNode f = SeqScan(c.Get(fact), units::Fraction::Clamp(1.0), rows);
    PlanNode j1 = DimJoin(c, std::move(f), "item", 204000, rows / 9,
                          60 * kMB);
    PlanNode j2 = DimJoin(c, std::move(j1), "customer_address", 1e6,
                          rows / 28, 140 * kMB);
    PlanNode j3 =
        DimJoin(c, std::move(j2), "date_dim", 73049, rows / 95, 8 * kMB);
    return HashAggregate(std::move(j3), 8000, 24 * kMB);
  };
  PlanNode uni = Append({channel("store_sales", 288e6),
                         channel("catalog_sales", 144e6),
                         channel("web_sales", 72e6)},
                        24000);
  PlanNode agg = HashAggregate(std::move(uni), 8000, 1.3 * kGB);
  return Limit(Sort(std::move(agg), 3 * kMB), 100);
}

// TPC-DS q61: promotional vs total store revenue — store_sales is scanned
// twice (two independent subqueries); almost pure sequential I/O.
PlanNode BuildQ61(const Catalog& c) {
  auto branch = [&](bool promo) {
    PlanNode ss = SeqScan(c.Get("store_sales"), units::Fraction::Clamp(1.0), 288e6);
    PlanNode j1 = DimJoin(c, std::move(ss), "store", 402, 96e6, 0.1 * kMB);
    PlanNode j2 = DimJoin(c, std::move(j1), "date_dim", 73049, 24e6, 8 * kMB);
    PlanNode j3 = DimJoin(c, std::move(j2), "customer", 2e6, 12e6, 1.6 * kGB);
    PlanNode j4 =
        DimJoin(c, std::move(j3), "customer_address", 1e6, 4e6, 140 * kMB);
    PlanNode j5 = DimJoin(c, std::move(j4), "item", 204000, 2e6, 60 * kMB);
    if (promo) {
      j5 = DimJoin(c, std::move(j5), "promotion", 1000, 500000, 0.2 * kMB);
    }
    return GroupAggregate(std::move(j5), 1);
  };
  PlanNode join = NestedLoopJoin(branch(true), branch(false), 1);
  return Limit(std::move(join), 100);
}

// TPC-DS q62: web sales shipping-delay buckets — one small fact scan plus
// modest random I/O; partially CPU-bound (one of the lightest templates).
PlanNode BuildQ62(const Catalog& c) {
  PlanNode ws = SeqScan(c.Get("web_sales"), units::Fraction::Clamp(1.0), 72e6);
  PlanNode wr = SeqScan(c.Get("web_returns"), units::Fraction::Clamp(1.0), 7.2e6);
  PlanNode j0 = HashJoin(std::move(wr), std::move(ws), 70e6, 90 * kMB);
  PlanNode probe = IndexScan(c.Get("web_sales"), 75 * kMB, 700000);
  PlanNode j1 = HashJoin(std::move(probe), std::move(j0), 70e6, 30 * kMB);
  PlanNode j2 = DimJoin(c, std::move(j1), "warehouse", 15, 70e6, 0.1 * kMB);
  PlanNode j3 = DimJoin(c, std::move(j2), "ship_mode", 20, 70e6, 0.1 * kMB);
  PlanNode j4 = DimJoin(c, std::move(j3), "web_site", 24, 70e6, 0.1 * kMB);
  PlanNode j5 = DimJoin(c, std::move(j4), "date_dim", 73049, 17e6, 8 * kMB);
  PlanNode agg = GroupAggregate(Sort(std::move(j5), 30 * kMB), 1200);
  return Limit(std::move(agg), 100);
}

// TPC-DS q65: lowest-revenue items per store — store_sales aggregated
// twice with a heavy aggregate; the CPU is the limiting factor.
PlanNode BuildQ65(const Catalog& c) {
  PlanNode ss1 = SeqScan(c.Get("store_sales"), units::Fraction::Clamp(1.0), 288e6);
  PlanNode agg1 = HashAggregate(std::move(ss1), 70e6, 1.4 * kGB);
  PlanNode ss2 = SeqScan(c.Get("store_sales"), units::Fraction::Clamp(0.2), 58e6);
  PlanNode agg2 = HashAggregate(std::move(ss2), 14e6, 200 * kMB);
  PlanNode agg2b = GroupAggregate(std::move(agg2), 400);
  PlanNode j1 = HashJoin(std::move(agg2b), std::move(agg1), 9e6, 1 * kMB);
  PlanNode j2 = DimJoin(c, std::move(j1), "store", 402, 9e6, 0.1 * kMB);
  PlanNode j3 = DimJoin(c, std::move(j2), "item", 204000, 9e6, 60 * kMB);
  // The per-store min() recomputation is CPU-heavy.
  PlanNode win = WindowAgg(std::move(j3), 9e6);
  PlanNode win2 = WindowAgg(std::move(win), 9e6);
  return Limit(Sort(std::move(win2), 120 * kMB), 100);
}

// TPC-DS q66: warehouse shipping volumes across web and catalog channels.
PlanNode BuildQ66(const Catalog& c) {
  auto channel = [&](const std::string& fact, double rows) {
    PlanNode f = SeqScan(c.Get(fact), units::Fraction::Clamp(1.0), rows);
    PlanNode j1 = DimJoin(c, std::move(f), "warehouse", 15, rows / 3,
                          0.1 * kMB);
    PlanNode j2 = DimJoin(c, std::move(j1), "time_dim", 86400, rows / 6,
                          12 * kMB);
    PlanNode j3 = DimJoin(c, std::move(j2), "ship_mode", 20, rows / 12,
                          0.1 * kMB);
    PlanNode j4 =
        DimJoin(c, std::move(j3), "date_dim", 73049, rows / 40, 8 * kMB);
    return HashAggregate(std::move(j4), 20000, 130 * kMB);
  };
  PlanNode uni = Append(
      {channel("web_sales", 72e6), channel("catalog_sales", 144e6)}, 40000);
  PlanNode agg = HashAggregate(std::move(uni), 20000, 130 * kMB);
  return Limit(Sort(std::move(agg), 15 * kMB), 100);
}

// TPC-DS q70: store revenue ranked within state (rollup + window sort).
PlanNode BuildQ70(const Catalog& c) {
  PlanNode ss = SeqScan(c.Get("store_sales"), units::Fraction::Clamp(1.0), 288e6);
  PlanNode j1 = DimJoin(c, std::move(ss), "date_dim", 73049, 72e6, 8 * kMB);
  PlanNode j2 = DimJoin(c, std::move(j1), "store", 402, 72e6, 0.1 * kMB);
  PlanNode agg = HashAggregate(std::move(j2), 30e6, 850 * kMB);
  PlanNode win = WindowAgg(Sort(std::move(agg), 450 * kMB), 30e6);
  return Limit(Sort(std::move(win), 450 * kMB), 100);
}

// TPC-DS q71: brand revenue by hour across all three channels; tiny
// intermediates and negligible CPU — the archetypal I/O-bound template.
PlanNode BuildQ71(const Catalog& c) {
  auto channel = [&](const std::string& fact, double rows) {
    PlanNode f = SeqScan(c.Get(fact), units::Fraction::Clamp(1.0), rows);
    return DimJoin(c, std::move(f), "date_dim", 73049, rows / 30, 8 * kMB);
  };
  PlanNode uni = Append({channel("store_sales", 288e6),
                         channel("catalog_sales", 144e6),
                         channel("web_sales", 72e6)},
                        16.8e6);
  PlanNode j1 = DimJoin(c, std::move(uni), "item", 204000, 1.7e6, 60 * kMB);
  PlanNode j2 = DimJoin(c, std::move(j1), "time_dim", 86400, 850000, 12 * kMB);
  PlanNode agg = HashAggregate(std::move(j2), 48000, 20 * kMB);
  return Sort(std::move(agg), 6 * kMB);
}

// TPC-DS q79: customers with large in-store purchases on high-vehicle days.
PlanNode BuildQ79(const Catalog& c) {
  PlanNode ss = SeqScan(c.Get("store_sales"), units::Fraction::Clamp(1.0), 288e6);
  PlanNode j1 = DimJoin(c, std::move(ss), "household_demographics", 7200,
                        58e6, 1 * kMB);
  PlanNode j2 = DimJoin(c, std::move(j1), "date_dim", 73049, 14e6, 8 * kMB);
  PlanNode j3 = DimJoin(c, std::move(j2), "store", 402, 14e6, 0.1 * kMB);
  PlanNode agg = HashAggregate(std::move(j3), 5e6, 220 * kMB);
  PlanNode j4 = DimJoin(c, std::move(agg), "customer", 2e6, 5e6, 280 * kMB);
  return Limit(Sort(std::move(j4), 150 * kMB), 100);
}

// TPC-DS q82: items in stock within a price band that sold in stores —
// scans inventory (shared with q22) plus store_sales.
PlanNode BuildQ82(const Catalog& c) {
  PlanNode inv = SeqScan(c.Get("inventory"), units::Fraction::Clamp(1.0), 399e6);
  PlanNode j1 = DimJoin(c, std::move(inv), "item", 204000, 40e6, 60 * kMB);
  PlanNode j2 = DimJoin(c, std::move(j1), "date_dim", 73049, 10e6, 8 * kMB);
  PlanNode ss = SeqScan(c.Get("store_sales"), units::Fraction::Clamp(1.0), 288e6);
  PlanNode j3 = HashJoin(std::move(j2), std::move(ss), 8e6, 180 * kMB);
  PlanNode probe = IndexScan(c.Get("store_sales"), 100 * kMB, 900000);
  PlanNode j4 = HashJoin(std::move(probe), std::move(j3), 4e6, 40 * kMB);
  PlanNode agg = HashAggregate(std::move(j4), 9000, 900 * kMB);
  return Limit(Sort(std::move(agg), 2 * kMB), 100);
}

// TPC-DS q90: morning-to-evening web order ratio — web_sales scanned twice.
PlanNode BuildQ90(const Catalog& c) {
  auto branch = [&]() {
    PlanNode ws = SeqScan(c.Get("web_sales"), units::Fraction::Clamp(1.0), 72e6);
    PlanNode j1 = DimJoin(c, std::move(ws), "household_demographics", 7200,
                          12e6, 1 * kMB);
    PlanNode j2 = DimJoin(c, std::move(j1), "time_dim", 86400, 1.5e6,
                          12 * kMB);
    PlanNode j3 = DimJoin(c, std::move(j2), "web_page", 2040, 750000,
                          0.5 * kMB);
    return GroupAggregate(std::move(j3), 1);
  };
  PlanNode join = NestedLoopJoin(branch(), branch(), 1);
  return Limit(Sort(std::move(join), 0.1 * kMB), 100);
}

}  // namespace

std::vector<QueryTemplate> MakePaperTemplates() {
  return {
      {2, "q2", "weekly channel rollup; memory-intensive sort", BuildQ2},
      {8, "q8", "store sales for preferred zips", BuildQ8},
      {15, "q15", "catalog sales by zip/quarter", BuildQ15},
      {17, "q17", "sales-with-returns chain; random I/O", BuildQ17},
      {18, "q18", "catalog sales by demographics", BuildQ18},
      {20, "q20", "catalog item class revenue", BuildQ20},
      {22, "q22", "inventory rollup; memory-bound", BuildQ22},
      {25, "q25", "sales/returns chain; random I/O", BuildQ25},
      {26, "q26", "catalog averages for demographic; I/O-bound", BuildQ26},
      {27, "q27", "store sales by item/state", BuildQ27},
      {32, "q32", "catalog excess-discount lookup; random I/O", BuildQ32},
      {33, "q33", "manufacturer revenue, 3 channels; I/O-bound", BuildQ33},
      {40, "q40", "catalog sales vs returns by warehouse", BuildQ40},
      {46, "q46", "household store sales by city; big sort", BuildQ46},
      {56, "q56", "item revenue, 3 channels", BuildQ56},
      {60, "q60", "category revenue, 3 channels", BuildQ60},
      {61, "q61", "promo vs total revenue; double fact scan", BuildQ61},
      {62, "q62", "web shipping-delay buckets; light", BuildQ62},
      {65, "q65", "lowest-revenue items; CPU-limited", BuildQ65},
      {66, "q66", "warehouse shipping volumes", BuildQ66},
      {70, "q70", "store revenue ranked in state", BuildQ70},
      {71, "q71", "brand revenue by hour; I/O-bound", BuildQ71},
      {79, "q79", "large purchases on busy days", BuildQ79},
      {82, "q82", "in-stock items sold; scans inventory", BuildQ82},
      {90, "q90", "web AM/PM order ratio; double web scan", BuildQ90},
  };
}

}  // namespace contender

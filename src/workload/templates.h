// The 25-template analytical workload of the paper (§2, §6.1): TPC-DS-style
// query templates of moderate running time, hand-modeled to match every
// characteristic the paper documents:
//   - templates 26, 33, 61, 71 are I/O-bound (>= 97% of isolated time on I/O);
//   - templates 17, 25, 32 are dominated by random I/O (index scans);
//   - templates 62, 65 are CPU-limited;
//   - templates 2, 22 are memory-intensive with multi-GB working sets;
//   - templates 22 and 82 share a scan of the `inventory` fact table;
//   - template 62 has one fact scan, small intermediates, ~87% I/O;
//   - isolated latencies span roughly 2-9 minutes.

#ifndef CONTENDER_WORKLOAD_TEMPLATES_H_
#define CONTENDER_WORKLOAD_TEMPLATES_H_

#include <functional>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "workload/query_plan.h"

namespace contender {

/// A parameterized query class. Instances share the plan structure and
/// differ in their predicate parameters (InstanceParams at compile time).
struct QueryTemplate {
  /// Paper template number (TPC-DS query id).
  int id = 0;
  std::string name;
  std::string description;
  /// Builds the nominal (optimizer-estimate) plan.
  std::function<PlanNode(const Catalog&)> build;
};

/// The paper's 25 templates:
/// {2, 8, 15, 17, 18, 20, 22, 25, 26, 27, 32, 33, 40, 46, 56, 60, 61, 62,
///  65, 66, 70, 71, 79, 82, 90}.
std::vector<QueryTemplate> MakePaperTemplates();

}  // namespace contender

#endif  // CONTENDER_WORKLOAD_TEMPLATES_H_

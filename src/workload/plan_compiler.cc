#include "workload/plan_compiler.h"

#include <algorithm>

#include "util/logging.h"

namespace contender {

namespace {

bool IsBlocking(PlanNodeType type) {
  switch (type) {
    case PlanNodeType::kHash:
    case PlanNodeType::kSort:
    case PlanNodeType::kHashAggregate:
    case PlanNodeType::kMaterialize:
      return true;
    default:
      return false;
  }
}

class Compiler {
 public:
  Compiler(const Catalog& catalog, const InstanceParams& params)
      : catalog_(catalog), params_(params) {}

  std::vector<sim::Phase> Compile(const PlanNode& root) {
    Visit(root);
    Flush();
    return std::move(phases_);
  }

 private:
  void Flush() {
    const sim::Phase& p = current_;
    if (p.seq_io_bytes > 0.0 || p.rnd_io_bytes > 0.0 || p.cpu_seconds > 0.0 ||
        p.mem_demand_bytes > 0.0) {
      phases_.push_back(current_);
    }
    current_ = sim::Phase();
  }

  void Visit(const PlanNode& node) {
    for (const PlanNode& c : node.children) Visit(c);

    switch (node.type) {
      case PlanNodeType::kSeqScan: {
        // A scan begins a new pipeline segment.
        Flush();
        auto def = catalog_.FindById(node.table);
        CONTENDER_CHECK(def.ok()) << "scan of unknown table";
        double fraction = node.scan_fraction;
        if (fraction < 1.0) {
          // Predicate-dependent partial scans vary with the parameters.
          fraction = std::clamp(fraction * params_.selectivity, 0.0, 1.0);
        }
        current_.table = node.table;
        current_.table_bytes = def->bytes;
        current_.cacheable = !def->is_fact;
        current_.seq_io_bytes = def->bytes * fraction * params_.io_scale;
        current_.cpu_seconds += node.cpu_seconds * params_.selectivity;
        break;
      }
      case PlanNodeType::kIndexScan:
      case PlanNodeType::kBitmapHeapScan: {
        Flush();
        current_.rnd_io_bytes = node.rnd_bytes * params_.selectivity;
        current_.cpu_seconds += node.cpu_seconds * params_.selectivity;
        break;
      }
      default: {
        if (IsBlocking(node.type)) {
          // A pipeline breaker. Its working memory is resident while the
          // input pipeline feeds it (hash table / sort buffer fills during
          // the producing phase), so the demand — and the spill risk —
          // attaches to the current phase. The final pass (hash drain,
          // sort merge, aggregate finalization) then runs as a segment of
          // its own that re-holds the same memory, with the spill already
          // paid upstream.
          const double mem = node.mem_bytes * params_.selectivity;
          if (mem > 0.0) {
            current_.mem_demand_bytes =
                std::max(current_.mem_demand_bytes, mem);
            current_.spillable = true;
          }
          Flush();
          current_.cpu_seconds = node.cpu_seconds * params_.selectivity;
          current_.mem_demand_bytes = mem;
          current_.spillable = false;
          Flush();
        } else {
          current_.cpu_seconds += node.cpu_seconds * params_.selectivity;
        }
        break;
      }
    }
  }

  const Catalog& catalog_;
  InstanceParams params_;
  sim::Phase current_;
  std::vector<sim::Phase> phases_;
};

}  // namespace

sim::QuerySpec CompilePlan(const PlanNode& plan, const Catalog& catalog,
                           const InstanceParams& params,
                           const std::string& name, int template_id) {
  sim::QuerySpec spec;
  spec.name = name;
  spec.template_id = template_id;
  Compiler compiler(catalog, params);
  spec.phases = compiler.Compile(plan);
  return spec;
}

}  // namespace contender

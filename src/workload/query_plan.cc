#include "workload/query_plan.h"

#include <algorithm>
#include <cmath>

namespace contender {

namespace {

// Per-row CPU costs (seconds/row), loosely calibrated to a 2.8 GHz core.
constexpr double kSeqScanCpuPerRow = 4.0e-8;
constexpr double kIndexScanCpuPerRow = 1.5e-7;
constexpr double kHashBuildCpuPerRow = 8.0e-8;
constexpr double kHashProbeCpuPerRow = 1.2e-7;
constexpr double kMergeJoinCpuPerRow = 5.0e-8;
constexpr double kNestedLoopCpuPerRow = 1.0e-7;
constexpr double kSortCpuPerRowLog = 2.5e-8;
constexpr double kHashAggCpuPerRow = 1.5e-7;
constexpr double kGroupAggCpuPerRow = 6.0e-8;
constexpr double kWindowAggCpuPerRow = 1.0e-7;
constexpr double kTrivialCpuPerRow = 1.0e-8;

}  // namespace

const char* PlanNodeTypeName(PlanNodeType type) {
  switch (type) {
    case PlanNodeType::kSeqScan:
      return "Seq Scan";
    case PlanNodeType::kIndexScan:
      return "Index Scan";
    case PlanNodeType::kBitmapHeapScan:
      return "Bitmap Heap Scan";
    case PlanNodeType::kFilter:
      return "Filter";
    case PlanNodeType::kHash:
      return "Hash";
    case PlanNodeType::kHashJoin:
      return "Hash Join";
    case PlanNodeType::kMergeJoin:
      return "Merge Join";
    case PlanNodeType::kNestedLoopJoin:
      return "Nested Loop";
    case PlanNodeType::kSort:
      return "Sort";
    case PlanNodeType::kHashAggregate:
      return "HashAggregate";
    case PlanNodeType::kGroupAggregate:
      return "GroupAggregate";
    case PlanNodeType::kWindowAgg:
      return "WindowAgg";
    case PlanNodeType::kMaterialize:
      return "Materialize";
    case PlanNodeType::kAppend:
      return "Append";
    case PlanNodeType::kLimit:
      return "Limit";
    case PlanNodeType::kNumTypes:
      break;
  }
  return "?";
}

PlanNode SeqScan(const TableDef& t, units::Fraction fraction,
                 double rows_out) {
  PlanNode n;
  n.type = PlanNodeType::kSeqScan;
  n.table = t.id;
  n.scan_fraction = fraction.value();
  n.rows = rows_out;
  // Scan CPU covers every tuple visited, not only those emitted.
  n.cpu_seconds =
      static_cast<double>(t.rows) * fraction.value() * kSeqScanCpuPerRow;
  return n;
}

PlanNode IndexScan(const TableDef& t, double rnd_bytes, double rows_out) {
  PlanNode n;
  n.type = PlanNodeType::kIndexScan;
  n.table = t.id;
  n.scan_fraction = 0.0;
  n.rnd_bytes = rnd_bytes;
  n.rows = rows_out;
  n.cpu_seconds = rows_out * kIndexScanCpuPerRow;
  return n;
}

PlanNode BitmapHeapScan(const TableDef& t, double rnd_bytes, double rows_out) {
  PlanNode n = IndexScan(t, rnd_bytes, rows_out);
  n.type = PlanNodeType::kBitmapHeapScan;
  return n;
}

PlanNode HashJoin(PlanNode build, PlanNode probe, double rows_out,
                  double build_mem_bytes) {
  PlanNode hash;
  hash.type = PlanNodeType::kHash;
  hash.rows = build.rows;
  hash.cpu_seconds = build.rows * kHashBuildCpuPerRow;
  hash.mem_bytes = build_mem_bytes;
  hash.children.push_back(std::move(build));

  PlanNode join;
  join.type = PlanNodeType::kHashJoin;
  join.rows = rows_out;
  join.cpu_seconds = probe.rows * kHashProbeCpuPerRow;
  join.children.push_back(std::move(hash));
  join.children.push_back(std::move(probe));
  return join;
}

PlanNode MergeJoin(PlanNode outer, PlanNode inner, double rows_out) {
  PlanNode join;
  join.type = PlanNodeType::kMergeJoin;
  join.rows = rows_out;
  join.cpu_seconds = (outer.rows + inner.rows) * kMergeJoinCpuPerRow;
  join.children.push_back(std::move(outer));
  join.children.push_back(std::move(inner));
  return join;
}

PlanNode NestedLoopJoin(PlanNode outer, PlanNode inner, double rows_out) {
  PlanNode join;
  join.type = PlanNodeType::kNestedLoopJoin;
  join.rows = rows_out;
  join.cpu_seconds = std::max(rows_out, outer.rows) * kNestedLoopCpuPerRow;
  join.children.push_back(std::move(outer));
  join.children.push_back(std::move(inner));
  return join;
}

PlanNode Sort(PlanNode child, double mem_bytes) {
  PlanNode n;
  n.type = PlanNodeType::kSort;
  n.rows = child.rows;
  const double rows = std::max(child.rows, 2.0);
  n.cpu_seconds = rows * std::log2(rows) * kSortCpuPerRowLog;
  n.mem_bytes = mem_bytes;
  n.children.push_back(std::move(child));
  return n;
}

PlanNode HashAggregate(PlanNode child, double rows_out, double mem_bytes) {
  PlanNode n;
  n.type = PlanNodeType::kHashAggregate;
  n.rows = rows_out;
  n.cpu_seconds = child.rows * kHashAggCpuPerRow;
  n.mem_bytes = mem_bytes;
  n.children.push_back(std::move(child));
  return n;
}

PlanNode GroupAggregate(PlanNode child, double rows_out) {
  PlanNode n;
  n.type = PlanNodeType::kGroupAggregate;
  n.rows = rows_out;
  n.cpu_seconds = child.rows * kGroupAggCpuPerRow;
  n.children.push_back(std::move(child));
  return n;
}

PlanNode WindowAgg(PlanNode child, double rows_out) {
  PlanNode n;
  n.type = PlanNodeType::kWindowAgg;
  n.rows = rows_out;
  n.cpu_seconds = child.rows * kWindowAggCpuPerRow;
  n.children.push_back(std::move(child));
  return n;
}

PlanNode Materialize(PlanNode child, double mem_bytes) {
  PlanNode n;
  n.type = PlanNodeType::kMaterialize;
  n.rows = child.rows;
  n.cpu_seconds = child.rows * kTrivialCpuPerRow;
  n.mem_bytes = mem_bytes;
  n.children.push_back(std::move(child));
  return n;
}

PlanNode Append(std::vector<PlanNode> children, double rows_out) {
  PlanNode n;
  n.type = PlanNodeType::kAppend;
  n.rows = rows_out;
  n.cpu_seconds = rows_out * kTrivialCpuPerRow;
  n.children = std::move(children);
  return n;
}

PlanNode Limit(PlanNode child, double rows_out) {
  PlanNode n;
  n.type = PlanNodeType::kLimit;
  n.rows = rows_out;
  n.cpu_seconds = rows_out * kTrivialCpuPerRow;
  n.children.push_back(std::move(child));
  return n;
}

PlanNode Filter(PlanNode child, double rows_out) {
  PlanNode n;
  n.type = PlanNodeType::kFilter;
  n.rows = rows_out;
  n.cpu_seconds = child.rows * kTrivialCpuPerRow;
  n.children.push_back(std::move(child));
  return n;
}

void VisitPlan(const PlanNode& root,
               const std::function<void(const PlanNode&)>& fn) {
  for (const PlanNode& c : root.children) VisitPlan(c, fn);
  fn(root);
}

int CountPlanSteps(const PlanNode& root) {
  int count = 0;
  VisitPlan(root, [&](const PlanNode&) { ++count; });
  return count;
}

double SumPlanRows(const PlanNode& root) {
  double rows = 0.0;
  VisitPlan(root, [&](const PlanNode& n) { rows += n.rows; });
  return rows;
}

std::vector<sim::TableId> FactTablesScanned(const PlanNode& root,
                                            const Catalog& catalog) {
  std::vector<sim::TableId> out;
  VisitPlan(root, [&](const PlanNode& n) {
    if (n.type != PlanNodeType::kSeqScan || n.table < 0) return;
    auto def = catalog.FindById(n.table);
    if (!def.ok() || !def->is_fact) return;
    if (std::find(out.begin(), out.end(), n.table) == out.end()) {
      out.push_back(n.table);
    }
  });
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace contender

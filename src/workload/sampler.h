// The workload sampler: orchestrates all measurements Contender trains on —
// isolated (cold-cache) profiles, fact-table scan times (s_f), spoiler
// latencies per MPL, and steady-state mix observations (all pairs at MPL 2,
// Latin Hypercube runs at higher MPLs).

#ifndef CONTENDER_WORKLOAD_SAMPLER_H_
#define CONTENDER_WORKLOAD_SAMPLER_H_

#include <map>
#include <vector>

#include "core/template_profile.h"
#include "sim/config.h"
#include "util/statusor.h"
#include "workload/steady_state.h"
#include "workload/workload.h"

namespace contender {

/// Everything the training phase collects.
struct TrainingData {
  std::vector<TemplateProfile> profiles;
  /// s_f: isolated full-scan time per fact table.
  std::map<sim::TableId, double> scan_times;
  /// Steady-state observations, keyed implicitly by MPL in each entry.
  std::vector<MixObservation> observations;
  /// Total virtual seconds of sampling (for the §5.4 cost accounting).
  double sampling_seconds = 0.0;
};

/// Sampling driver bound to one workload and one hardware model.
class WorkloadSampler {
 public:
  struct Options {
    /// MPLs to sample (mixes and spoiler latencies).
    std::vector<int> mpls = {2, 3, 4, 5};
    /// LHS rounds per MPL above 2 (paper: 4).
    int lhs_runs = 4;
    /// Cap on all-pairs sampling at MPL 2; <= 0 means all pairs.
    int max_pair_mixes = 0;
    SteadyStateOptions steady_state;
    uint64_t seed = 42;
  };

  WorkloadSampler(const Workload* workload, const sim::SimConfig& config,
                  const Options& options);

  /// Isolated cold-cache profile of one template, including spoiler
  /// latencies at the requested MPLs (pass {} to skip the spoiler runs).
  StatusOr<TemplateProfile> ProfileTemplate(int index,
                                            const std::vector<int>& mpls);

  /// s_f for one table (isolated scan-only query).
  StatusOr<double> MeasureScanTime(sim::TableId table);

  /// l_max: latency of one template run against the spoiler at `mpl`.
  StatusOr<double> MeasureSpoilerLatency(int index, int mpl);

  /// Steady-state run of one mix; returns one observation per stream.
  StatusOr<std::vector<MixObservation>> ObserveMix(
      const std::vector<int>& mix);

  /// Runs the full paper §2 sampling protocol.
  StatusOr<TrainingData> CollectAll();

  /// The mixes CollectAll() would execute, per MPL (exposed for the
  /// sampling-cost accounting bench).
  StatusOr<std::vector<std::vector<int>>> MixesForMpl(int mpl);

 private:
  const Workload* workload_;
  sim::SimConfig config_;
  Options options_;
  Rng rng_;
};

}  // namespace contender

#endif  // CONTENDER_WORKLOAD_SAMPLER_H_

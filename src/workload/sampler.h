// The workload sampler: orchestrates all measurements Contender trains on —
// isolated (cold-cache) profiles, fact-table scan times (s_f), spoiler
// latencies per MPL, and steady-state mix observations (all pairs at MPL 2,
// Latin Hypercube runs at higher MPLs).
//
// The training runs are mutually independent simulations, so CollectAll()
// fans them across a sim::BatchRunner pool and memoizes each run in a
// sim::RunCache. Seeds are derived in the exact order the sequential
// protocol consumes them, so the collected data is bit-identical for every
// pool width (including 1) and across cold/warm cache states.

#ifndef CONTENDER_WORKLOAD_SAMPLER_H_
#define CONTENDER_WORKLOAD_SAMPLER_H_

#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "core/template_profile.h"
#include "sim/batch_runner.h"
#include "sim/config.h"
#include "util/statusor.h"
#include "util/units.h"
#include "workload/steady_state.h"
#include "workload/workload.h"

namespace contender {

/// Everything the training phase collects.
struct TrainingData {
  std::vector<TemplateProfile> profiles;
  /// s_f: isolated full-scan time per fact table.
  ScanTimes scan_times;
  /// Steady-state observations, keyed implicitly by MPL in each entry.
  std::vector<MixObservation> observations;
  /// Total virtual time spent sampling (for the §5.4 cost accounting).
  units::Seconds sampling_seconds;
};

/// Sampling driver bound to one workload and one hardware model.
class WorkloadSampler {
 public:
  struct Options {
    /// MPLs to sample (mixes and spoiler latencies).
    std::vector<int> mpls = {2, 3, 4, 5};
    /// LHS rounds per MPL above 2 (paper: 4).
    int lhs_runs = 4;
    /// Cap on all-pairs sampling at MPL 2; <= 0 means all pairs.
    int max_pair_mixes = 0;
    SteadyStateOptions steady_state;
    uint64_t seed = 42;
    /// Pool width for CollectAll; <= 0 selects hardware concurrency.
    int threads = 0;
    /// Run memoization cache; nullptr disables caching.
    sim::RunCache* cache = &sim::RunCache::Global();
  };

  WorkloadSampler(const Workload* workload, const sim::SimConfig& config,
                  const Options& options);

  /// Isolated cold-cache profile of one template, including spoiler
  /// latencies at the requested MPLs (pass {} to skip the spoiler runs).
  StatusOr<TemplateProfile> ProfileTemplate(int index,
                                            const std::vector<int>& mpls);

  /// s_f for one table (isolated scan-only query).
  StatusOr<units::Seconds> MeasureScanTime(sim::TableId table);

  /// l_max: latency of one template run against the spoiler at `mpl`.
  StatusOr<units::Seconds> MeasureSpoilerLatency(int index, units::Mpl mpl);

  /// Steady-state run of one mix; returns one observation per stream.
  StatusOr<std::vector<MixObservation>> ObserveMix(
      const std::vector<int>& mix);

  /// Runs the full paper §2 sampling protocol, fanned across the pool.
  StatusOr<TrainingData> CollectAll();

  /// The mixes CollectAll() would execute, per MPL (exposed for the
  /// sampling-cost accounting bench).
  StatusOr<std::vector<std::vector<int>>> MixesForMpl(int mpl);

 private:
  /// One isolated cold-cache run of a template's nominal instance.
  sim::EngineRun IsolatedRun(int index, uint64_t seed) const;
  /// Spoiler streams at `mpl` plus the primary; waits for the primary.
  sim::EngineRun SpoilerRun(int index, int mpl, uint64_t seed) const;
  /// Isolated full scan of one table.
  StatusOr<sim::EngineRun> ScanRun(sim::TableId table, uint64_t seed) const;
  /// Profile fields derived from the plan alone (no simulation).
  TemplateProfile MakeProfileSkeleton(int index) const;
  /// Steady-state observation of one mix under an explicit seed
  /// (thread-safe; memoizes through the options cache).
  StatusOr<std::vector<MixObservation>> ObserveMixSeeded(
      const std::vector<int>& mix, uint64_t seed) const;

  sim::BatchRunner& runner();

  const Workload* workload_;
  sim::SimConfig config_;
  Options options_;
  Rng rng_;
  std::unique_ptr<sim::BatchRunner> runner_;
};

}  // namespace contender

#endif  // CONTENDER_WORKLOAD_SAMPLER_H_

#include "workload/steady_state.h"

#include <unordered_map>

#include "sim/engine.h"
#include "util/summary_stats.h"

namespace contender {

namespace {

/// Content hash pinning a steady-state run: hardware model, steady-state
/// protocol (incl. seed), and the mix — both the indices and each member's
/// nominal spec, so workload content changes invalidate the key. Instance
/// parameter jitter is derived from the seed, so (nominal specs, seed) pins
/// the full instance stream.
uint64_t HashSteadyStateRun(const Workload& workload,
                            const std::vector<int>& mix,
                            const sim::SimConfig& config,
                            const SteadyStateOptions& options) {
  sim::RunHasher hasher;
  hasher.Add(config);
  hasher.Add(options.seed);
  hasher.Add(options.samples_per_stream);
  hasher.Add(options.warmup_per_stream);
  hasher.Add(static_cast<uint64_t>(mix.size()));
  for (int idx : mix) {
    hasher.Add(idx);
    hasher.Add(workload.InstantiateNominal(idx));
  }
  return hasher.Digest();
}

/// Trims warmup/tail samples and computes per-stream means from the raw
/// collected latencies (shared by the live and cache-replay paths).
SteadyStateResult AssembleResult(
    const std::vector<int>& mix, const SteadyStateOptions& options,
    const std::vector<std::vector<double>>& collected, double duration) {
  SteadyStateResult result;
  result.streams.resize(mix.size());
  for (size_t s = 0; s < mix.size(); ++s) {
    StreamResult& sr = result.streams[s];
    sr.template_index = mix[s];
    const auto& c = collected[s];
    const size_t begin =
        static_cast<size_t>(options.warmup_per_stream) < c.size()
            ? static_cast<size_t>(options.warmup_per_stream)
            : c.size();
    const size_t end =
        std::min(c.size(),
                 begin + static_cast<size_t>(options.samples_per_stream));
    sr.latencies.assign(c.begin() + static_cast<long>(begin),
                        c.begin() + static_cast<long>(end));
    sr.mean_latency = Mean(sr.latencies);
  }
  result.duration = duration;
  return result;
}

}  // namespace

StatusOr<SteadyStateResult> RunSteadyState(const Workload& workload,
                                           const std::vector<int>& mix,
                                           const sim::SimConfig& config,
                                           const SteadyStateOptions& options,
                                           sim::RunCache* cache) {
  if (mix.empty()) {
    return Status::InvalidArgument("RunSteadyState: empty mix");
  }
  for (int idx : mix) {
    if (idx < 0 || idx >= workload.size()) {
      return Status::InvalidArgument("RunSteadyState: bad template index");
    }
  }
  if (options.samples_per_stream <= 0) {
    return Status::InvalidArgument(
        "RunSteadyState: samples_per_stream must be positive");
  }

  uint64_t key = 0;
  if (cache != nullptr) {
    key = HashSteadyStateRun(workload, mix, config, options);
    if (std::optional<sim::RunCache::Entry> entry = cache->Lookup(key)) {
      return AssembleResult(mix, options, entry->series, entry->duration);
    }
  }

  Rng rng(options.seed);
  sim::Engine engine(config, rng.Next());

  const size_t num_streams = mix.size();
  const int needed = options.warmup_per_stream + options.samples_per_stream;

  std::vector<std::vector<double>> collected(num_streams);
  std::unordered_map<int, size_t> stream_of_process;

  auto launch = [&](size_t stream) {
    const int idx = mix[stream];
    sim::QuerySpec spec = workload.Instantiate(idx, &rng);
    const int pid = engine.AddProcess(spec, engine.now());
    stream_of_process[pid] = stream;
  };

  auto all_collected = [&]() {
    for (const auto& c : collected) {
      if (static_cast<int>(c.size()) < needed) return false;
    }
    return true;
  };

  engine.SetCompletionCallback([&](const sim::ProcessResult& r) {
    auto it = stream_of_process.find(r.process_id);
    if (it == stream_of_process.end()) return;
    const size_t stream = it->second;
    collected[stream].push_back(r.latency().value());
    if (all_collected()) {
      engine.RequestStop();
      return;
    }
    launch(stream);
  });

  for (size_t s = 0; s < num_streams; ++s) launch(s);

  Status st = engine.Run();
  if (!st.ok()) return st;

  if (cache != nullptr) {
    sim::RunCache::Entry entry;
    entry.series = collected;
    entry.duration = engine.now().value();
    cache->Insert(key, std::move(entry));
  }
  return AssembleResult(mix, options, collected, engine.now().value());
}

}  // namespace contender

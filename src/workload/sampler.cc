#include "workload/sampler.h"

#include <algorithm>

#include "ml/lhs.h"
#include "sim/spoiler.h"
#include "workload/query_plan.h"

namespace contender {

WorkloadSampler::WorkloadSampler(const Workload* workload,
                                 const sim::SimConfig& config,
                                 const Options& options)
    : workload_(workload), config_(config), options_(options),
      rng_(options.seed) {}

sim::BatchRunner& WorkloadSampler::runner() {
  if (runner_ == nullptr) {
    sim::BatchRunner::Options opts;
    opts.threads = options_.threads;
    opts.cache = options_.cache;
    runner_ = std::make_unique<sim::BatchRunner>(opts);
  }
  return *runner_;
}

sim::EngineRun WorkloadSampler::IsolatedRun(int index, uint64_t seed) const {
  sim::EngineRun run;
  run.specs.push_back(workload_->InstantiateNominal(index));
  run.config = config_;
  run.seed = seed;
  return run;
}

sim::EngineRun WorkloadSampler::SpoilerRun(int index, int mpl,
                                           uint64_t seed) const {
  sim::EngineRun run;
  run.specs = sim::MakeSpoiler(config_, units::Mpl(mpl));
  run.specs.push_back(workload_->InstantiateNominal(index));
  run.config = config_;
  run.seed = seed;
  run.run_until = static_cast<int>(run.specs.size()) - 1;
  return run;
}

StatusOr<sim::EngineRun> WorkloadSampler::ScanRun(sim::TableId table,
                                                  uint64_t seed) const {
  auto def = workload_->catalog().FindById(table);
  if (!def.ok()) return def.status();
  sim::QuerySpec spec;
  spec.name = "scan-" + def->name;
  sim::Phase phase;
  phase.seq_io_bytes = def->bytes;
  phase.table = def->id;
  phase.table_bytes = def->bytes;
  phase.cacheable = !def->is_fact;
  spec.phases.push_back(phase);
  sim::EngineRun run;
  run.specs.push_back(std::move(spec));
  run.config = config_;
  run.seed = seed;
  return run;
}

TemplateProfile WorkloadSampler::MakeProfileSkeleton(int index) const {
  TemplateProfile profile;
  profile.template_index = index;
  profile.template_id = workload_->tmpl(index).id;
  const PlanNode plan = workload_->NominalPlan(index);
  profile.plan_steps = CountPlanSteps(plan);
  profile.records_accessed = SumPlanRows(plan);
  profile.fact_tables = FactTablesScanned(plan, workload_->catalog());
  const sim::QuerySpec spec = workload_->InstantiateNominal(index);
  double ws = 0.0;
  for (const sim::Phase& phase : spec.phases) {
    ws = std::max(ws, phase.mem_demand_bytes);
  }
  profile.working_set_bytes = units::Bytes(ws);
  return profile;
}

StatusOr<TemplateProfile> WorkloadSampler::ProfileTemplate(
    int index, const std::vector<int>& mpls) {
  if (index < 0 || index >= workload_->size()) {
    return Status::InvalidArgument("ProfileTemplate: bad template index");
  }
  TemplateProfile profile = MakeProfileSkeleton(index);

  // Isolated cold-cache run (fresh engine => empty buffer pool).
  auto isolated = runner().RunOne(IsolatedRun(index, rng_.Next()));
  if (!isolated.ok()) return isolated.status();
  const sim::ProcessResult& r = isolated->results.back();
  profile.isolated_latency = r.latency();
  profile.io_fraction = r.io_fraction();

  for (int mpl : mpls) {
    auto lmax = MeasureSpoilerLatency(index, units::Mpl(mpl));
    if (!lmax.ok()) return lmax.status();
    profile.spoiler_latency[mpl] = *lmax;
  }
  return profile;
}

StatusOr<units::Seconds> WorkloadSampler::MeasureScanTime(
    sim::TableId table) {
  auto run = ScanRun(table, rng_.Next());
  if (!run.ok()) return run.status();
  auto outcome = runner().RunOne(*run);
  if (!outcome.ok()) return outcome.status();
  return outcome->results.back().latency();
}

StatusOr<units::Seconds> WorkloadSampler::MeasureSpoilerLatency(
    int index, units::Mpl mpl) {
  if (mpl.value() < 2) {
    return Status::InvalidArgument("spoiler requires MPL >= 2");
  }
  auto outcome = runner().RunOne(SpoilerRun(index, mpl.value(), rng_.Next()));
  if (!outcome.ok()) return outcome.status();
  return outcome->results.back().latency();
}

StatusOr<std::vector<MixObservation>> WorkloadSampler::ObserveMixSeeded(
    const std::vector<int>& mix, uint64_t seed) const {
  SteadyStateOptions ss = options_.steady_state;
  ss.seed = seed;
  auto result = RunSteadyState(*workload_, mix, config_, ss, options_.cache);
  if (!result.ok()) return result.status();

  std::vector<MixObservation> out;
  for (size_t s = 0; s < result->streams.size(); ++s) {
    MixObservation obs;
    obs.primary_index = mix[s];
    obs.mpl = static_cast<int>(mix.size());
    for (size_t o = 0; o < mix.size(); ++o) {
      if (o != s) obs.concurrent_indices.push_back(mix[o]);
    }
    obs.latency = units::Seconds(result->streams[s].mean_latency);
    out.push_back(std::move(obs));
  }
  return out;
}

StatusOr<std::vector<MixObservation>> WorkloadSampler::ObserveMix(
    const std::vector<int>& mix) {
  return ObserveMixSeeded(mix, rng_.Next());
}

StatusOr<std::vector<std::vector<int>>> WorkloadSampler::MixesForMpl(
    int mpl) {
  const int n = workload_->size();
  if (mpl == 2) {
    std::vector<MixSelection> pairs = AllPairs(n);
    if (options_.max_pair_mixes > 0 &&
        static_cast<int>(pairs.size()) > options_.max_pair_mixes) {
      rng_.Shuffle(&pairs);
      pairs.resize(static_cast<size_t>(options_.max_pair_mixes));
    }
    return pairs;
  }
  return LatinHypercubeRuns(n, mpl, options_.lhs_runs, &rng_);
}

StatusOr<TrainingData> WorkloadSampler::CollectAll() {
  TrainingData data;
  const int n = workload_->size();
  for (int mpl : options_.mpls) {
    if (mpl < 2) {
      return Status::InvalidArgument("CollectAll: spoiler MPLs must be >= 2");
    }
  }

  // Phase 1: derive every run's seed in the exact order the sequential
  // protocol consumes the sampler Rng, so the collected data is
  // bit-identical to single-threaded sampling regardless of pool width.
  struct ProfileTask {
    uint64_t isolated_seed = 0;
    std::vector<std::pair<int, uint64_t>> spoiler_seeds;  // (mpl, seed)
  };
  std::vector<ProfileTask> profile_tasks(static_cast<size_t>(n));
  for (ProfileTask& task : profile_tasks) {
    task.isolated_seed = rng_.Next();
    for (int mpl : options_.mpls) {
      task.spoiler_seeds.emplace_back(mpl, rng_.Next());
    }
  }
  const std::vector<TableDef> fact_tables = workload_->catalog().FactTables();
  std::vector<uint64_t> scan_seeds;
  scan_seeds.reserve(fact_tables.size());
  for (size_t f = 0; f < fact_tables.size(); ++f) {
    scan_seeds.push_back(rng_.Next());
  }
  struct MixTask {
    std::vector<int> mix;
    uint64_t seed = 0;
  };
  std::vector<MixTask> mix_tasks;
  for (int mpl : options_.mpls) {
    auto mixes = MixesForMpl(mpl);
    if (!mixes.ok()) return mixes.status();
    for (auto& mix : *mixes) {
      mix_tasks.push_back({std::move(mix), rng_.Next()});
    }
  }

  // Phase 2: fan every engine run (isolated, spoilers, scans) across the
  // pool; the flattened run list is consumed back in submission order.
  std::vector<sim::EngineRun> runs;
  for (int i = 0; i < n; ++i) {
    const ProfileTask& task = profile_tasks[static_cast<size_t>(i)];
    runs.push_back(IsolatedRun(i, task.isolated_seed));
    for (const auto& [mpl, seed] : task.spoiler_seeds) {
      runs.push_back(SpoilerRun(i, mpl, seed));
    }
  }
  for (size_t f = 0; f < fact_tables.size(); ++f) {
    auto run = ScanRun(fact_tables[f].id, scan_seeds[f]);
    if (!run.ok()) return run.status();
    runs.push_back(std::move(*run));
  }
  std::vector<StatusOr<sim::EngineRunResult>> outcomes = runner().Run(runs);

  size_t cursor = 0;
  for (int i = 0; i < n; ++i) {
    const StatusOr<sim::EngineRunResult>& isolated = outcomes[cursor++];
    if (!isolated.ok()) return isolated.status();
    TemplateProfile profile = MakeProfileSkeleton(i);
    profile.isolated_latency = isolated->results.back().latency();
    profile.io_fraction = isolated->results.back().io_fraction();
    for (const auto& [mpl, seed] : profile_tasks[static_cast<size_t>(i)]
                                       .spoiler_seeds) {
      (void)seed;
      const StatusOr<sim::EngineRunResult>& spoiled = outcomes[cursor++];
      if (!spoiled.ok()) return spoiled.status();
      profile.spoiler_latency[mpl] = spoiled->results.back().latency();
    }
    data.sampling_seconds += profile.isolated_latency;
    for (const auto& [mpl, lmax] : profile.spoiler_latency) {
      (void)mpl;
      data.sampling_seconds += lmax;
    }
    data.profiles.push_back(std::move(profile));
  }
  for (size_t f = 0; f < fact_tables.size(); ++f) {
    const StatusOr<sim::EngineRunResult>& scan = outcomes[cursor++];
    if (!scan.ok()) return scan.status();
    const units::Seconds s_f = scan->results.back().latency();
    data.scan_times[fact_tables[f].id] = s_f;
    data.sampling_seconds += s_f;
  }

  // Phase 3: steady-state mix observations, fanned the same way (each run
  // memoizes through the cache inside RunSteadyState).
  auto mix_results = runner().Map(
      mix_tasks.size(),
      [this, &mix_tasks](size_t m) {
        return ObserveMixSeeded(mix_tasks[m].mix, mix_tasks[m].seed);
      });
  for (const auto& obs : mix_results) {
    if (!obs.ok()) return obs.status();
    data.observations.insert(data.observations.end(), obs->begin(),
                             obs->end());
  }
  return data;
}

}  // namespace contender

#include "workload/sampler.h"

#include <algorithm>

#include "ml/lhs.h"
#include "sim/engine.h"
#include "sim/spoiler.h"
#include "workload/query_plan.h"

namespace contender {

WorkloadSampler::WorkloadSampler(const Workload* workload,
                                 const sim::SimConfig& config,
                                 const Options& options)
    : workload_(workload), config_(config), options_(options),
      rng_(options.seed) {}

StatusOr<TemplateProfile> WorkloadSampler::ProfileTemplate(
    int index, const std::vector<int>& mpls) {
  if (index < 0 || index >= workload_->size()) {
    return Status::InvalidArgument("ProfileTemplate: bad template index");
  }
  TemplateProfile profile;
  profile.template_index = index;
  profile.template_id = workload_->tmpl(index).id;

  // Isolated cold-cache run (fresh engine => empty buffer pool).
  sim::Engine engine(config_, rng_.Next());
  const sim::QuerySpec spec = workload_->InstantiateNominal(index);
  const int pid = engine.AddProcess(spec, 0.0);
  CONTENDER_RETURN_IF_ERROR(engine.Run());
  const sim::ProcessResult& r = engine.result(pid);
  profile.isolated_latency = r.latency();
  profile.io_fraction = r.io_fraction();

  // Plan-derived (semantic) statistics.
  const PlanNode plan = workload_->NominalPlan(index);
  profile.plan_steps = CountPlanSteps(plan);
  profile.records_accessed = SumPlanRows(plan);
  profile.fact_tables = FactTablesScanned(plan, workload_->catalog());
  double ws = 0.0;
  for (const sim::Phase& phase : spec.phases) {
    ws = std::max(ws, phase.mem_demand_bytes);
  }
  profile.working_set_bytes = ws;

  for (int mpl : mpls) {
    auto lmax = MeasureSpoilerLatency(index, mpl);
    if (!lmax.ok()) return lmax.status();
    profile.spoiler_latency[mpl] = *lmax;
  }
  return profile;
}

StatusOr<double> WorkloadSampler::MeasureScanTime(sim::TableId table) {
  auto def = workload_->catalog().FindById(table);
  if (!def.ok()) return def.status();
  sim::QuerySpec spec;
  spec.name = "scan-" + def->name;
  sim::Phase phase;
  phase.seq_io_bytes = def->bytes;
  phase.table = def->id;
  phase.table_bytes = def->bytes;
  phase.cacheable = !def->is_fact;
  spec.phases.push_back(phase);
  sim::Engine engine(config_, rng_.Next());
  const int pid = engine.AddProcess(spec, 0.0);
  CONTENDER_RETURN_IF_ERROR(engine.Run());
  return engine.result(pid).latency();
}

StatusOr<double> WorkloadSampler::MeasureSpoilerLatency(int index, int mpl) {
  if (mpl < 2) {
    return Status::InvalidArgument("spoiler requires MPL >= 2");
  }
  sim::Engine engine(config_, rng_.Next());
  for (const sim::QuerySpec& s : sim::MakeSpoiler(config_, mpl)) {
    engine.AddProcess(s, 0.0);
  }
  const sim::QuerySpec spec = workload_->InstantiateNominal(index);
  const int pid = engine.AddProcess(spec, 0.0);
  CONTENDER_RETURN_IF_ERROR(engine.RunUntilProcessCompletes(pid));
  return engine.result(pid).latency();
}

StatusOr<std::vector<MixObservation>> WorkloadSampler::ObserveMix(
    const std::vector<int>& mix) {
  SteadyStateOptions ss = options_.steady_state;
  ss.seed = rng_.Next();
  auto result = RunSteadyState(*workload_, mix, config_, ss);
  if (!result.ok()) return result.status();

  std::vector<MixObservation> out;
  for (size_t s = 0; s < result->streams.size(); ++s) {
    MixObservation obs;
    obs.primary_index = mix[s];
    obs.mpl = static_cast<int>(mix.size());
    for (size_t o = 0; o < mix.size(); ++o) {
      if (o != s) obs.concurrent_indices.push_back(mix[o]);
    }
    obs.latency = result->streams[s].mean_latency;
    out.push_back(std::move(obs));
  }
  return out;
}

StatusOr<std::vector<std::vector<int>>> WorkloadSampler::MixesForMpl(
    int mpl) {
  const int n = workload_->size();
  if (mpl == 2) {
    std::vector<MixSelection> pairs = AllPairs(n);
    if (options_.max_pair_mixes > 0 &&
        static_cast<int>(pairs.size()) > options_.max_pair_mixes) {
      rng_.Shuffle(&pairs);
      pairs.resize(static_cast<size_t>(options_.max_pair_mixes));
    }
    return pairs;
  }
  return LatinHypercubeRuns(n, mpl, options_.lhs_runs, &rng_);
}

StatusOr<TrainingData> WorkloadSampler::CollectAll() {
  TrainingData data;

  for (int i = 0; i < workload_->size(); ++i) {
    auto profile = ProfileTemplate(i, options_.mpls);
    if (!profile.ok()) return profile.status();
    data.sampling_seconds += profile->isolated_latency;
    for (const auto& [mpl, lmax] : profile->spoiler_latency) {
      data.sampling_seconds += lmax;
    }
    data.profiles.push_back(std::move(*profile));
  }

  for (const TableDef& t : workload_->catalog().FactTables()) {
    auto s_f = MeasureScanTime(t.id);
    if (!s_f.ok()) return s_f.status();
    data.scan_times[t.id] = *s_f;
    data.sampling_seconds += *s_f;
  }

  for (int mpl : options_.mpls) {
    auto mixes = MixesForMpl(mpl);
    if (!mixes.ok()) return mixes.status();
    for (const auto& mix : *mixes) {
      auto obs = ObserveMix(mix);
      if (!obs.ok()) return obs.status();
      data.observations.insert(data.observations.end(), obs->begin(),
                               obs->end());
    }
  }
  return data;
}

}  // namespace contender

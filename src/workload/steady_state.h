// Steady-state mix execution (paper §2, Fig. 2): one stream per mix slot,
// each stream replacing its query with a fresh instance of the same
// template as soon as one finishes, so concurrent queries start at varied
// offsets. Per-stream latencies are collected after a warmup prefix and the
// run stops once every stream holds enough samples (the still-running tail
// instances are discarded, mirroring the paper's trimming).

#ifndef CONTENDER_WORKLOAD_STEADY_STATE_H_
#define CONTENDER_WORKLOAD_STEADY_STATE_H_

#include <vector>

#include "sim/config.h"
#include "sim/run_cache.h"
#include "util/statusor.h"
#include "workload/workload.h"

namespace contender {

struct SteadyStateOptions {
  /// Counted samples per stream (paper: n = 5).
  int samples_per_stream = 5;
  /// Leading instances discarded per stream.
  int warmup_per_stream = 1;
  uint64_t seed = 1;
};

struct StreamResult {
  /// Workload index of this stream's template.
  int template_index = -1;
  /// Counted latencies (post-warmup).
  std::vector<double> latencies;
  double mean_latency = 0.0;
};

struct SteadyStateResult {
  std::vector<StreamResult> streams;
  /// Virtual time at which collection finished.
  double duration = 0.0;
};

/// Runs the mix (workload indices, one per slot; repeats allowed) to steady
/// state under the given hardware model. When `cache` is non-null the run is
/// memoized under a content hash of (mix member nominal specs, hardware
/// config, steady-state options incl. seed); a hit replays the recorded
/// per-stream latency samples instead of re-simulating. The function is
/// thread-safe and is fanned across a pool by WorkloadSampler::CollectAll.
StatusOr<SteadyStateResult> RunSteadyState(const Workload& workload,
                                           const std::vector<int>& mix,
                                           const sim::SimConfig& config,
                                           const SteadyStateOptions& options,
                                           sim::RunCache* cache = nullptr);

}  // namespace contender

#endif  // CONTENDER_WORKLOAD_STEADY_STATE_H_

#!/usr/bin/env python3
"""Repo-specific lint rules for Contender.

Rules enforced (each maps to an invariant documented in DESIGN.md):

  R1 naked-random     No rand()/std::random_device outside src/util/random.*.
                      All stochastic behavior must flow through util/random's
                      seeded Rng so simulations stay reproducible.
  R2 cout-in-src      No std::cout/std::cerr in src/ (library code must use
                      util/logging or take an ostream&). bench/, examples/
                      and tests/ are CLIs and may print.
  R3 raw-dimension    No raw `double` parameter whose name contains
                      `latency` or `fraction` in a public header under src/.
                      Those quantities have dedicated types in util/units.h.
  R4 unregistered-test  Every tests/**/*_test.cc must be registered in a
                      CMakeLists.txt, or it silently never runs.
  R5 naked-sleep      No sleep_for/sleep_until/usleep/nanosleep and no
                      ad-hoc retry loops (a for/while spelled over
                      retry/attempt counters) in src/ outside
                      src/util/retry.*. Library code that waits or retries
                      must go through util/retry's Clock and
                      RetryWithBackoff so deadlines are budgeted, backoff
                      is seeded-deterministic, and tests can inject a
                      FakeClock. bench/ and tests/ drive wall-clock
                      scenarios and are exempt.
  R6 read-path-mutex  No std::mutex/lock_guard/unique_lock (or any other
                      blocking-lock vocabulary) in the serving read-path
                      files (src/serve/service.* and
                      src/serve/snapshot_holder.*). The read path is
                      lock-free by design (DESIGN.md §12): readers go
                      seqlock + epoch guard, and the ONLY sanctioned lock
                      is the writer seam inside SnapshotHolder::Publish /
                      shared(), whose lines carry the explicit
                      `// contender-lint: writer-seam` marker. A new lock
                      anywhere else reintroduces reader serialization.

Usage:
  tools/lint.py [--root DIR]   lint the repository (non-zero exit on findings)
  tools/lint.py --self-test    seed violations into a temp tree and verify
                               every rule fires (non-zero exit on a miss)

Suppression: append `// contender-lint: disable=<rule>` to the offending
line. Keep suppressions rare and justified.
"""

import argparse
import os
import re
import sys
import tempfile

RULES = ("naked-random", "cout-in-src", "raw-dimension", "unregistered-test",
         "naked-sleep", "read-path-mutex")

NAKED_RANDOM_RE = re.compile(r"(?<![\w:])(?:std::)?rand\s*\(\s*\)|std::random_device")
COUT_RE = re.compile(r"std::c(?:out|err)\b")
# Parameters only: a parameter ends in `,` or `)` (possibly after a
# default value). Struct fields end in `;` and are exempt — measurement
# buffers and simulator knobs legitimately hold raw doubles.
RAW_DIMENSION_RE = re.compile(
    r"\bdouble\s+\w*(?:latency|fraction)\w*\s*(?:=[^,);]*)?[,)]")
NAKED_SLEEP_RE = re.compile(
    r"\bsleep_(?:for|until)\s*\(|(?<![\w:])(?:u|nano)sleep\s*\(")
# A for/while header spelled over a retry/attempt counter is an ad-hoc
# retry loop; the sanctioned loop lives in util/retry.cc.
RETRY_LOOP_RE = re.compile(
    r"\b(?:for|while)\s*\([^)]*\b(?:retry|retries|attempts?)\b")
SUPPRESS_RE = re.compile(r"//\s*contender-lint:\s*disable=([\w,-]+)")
LINE_COMMENT_RE = re.compile(r"//.*$")
# The serving read-path files that must stay free of blocking locks; the
# sole exception is the writer seam, marked line-by-line.
READ_PATH_FILES = (
    os.path.join("src", "serve", "service.h"),
    os.path.join("src", "serve", "service.cc"),
    os.path.join("src", "serve", "snapshot_holder.h"),
    os.path.join("src", "serve", "snapshot_holder.cc"),
)
READ_PATH_MUTEX_RE = re.compile(
    r"std::(?:mutex|timed_mutex|recursive_mutex|recursive_timed_mutex|"
    r"shared_mutex|shared_timed_mutex|lock_guard|unique_lock|shared_lock|"
    r"scoped_lock|condition_variable)\b")
WRITER_SEAM_RE = re.compile(r"//\s*contender-lint:\s*writer-seam")


class Finding:
    def __init__(self, rule, path, line, text):
        self.rule = rule
        self.path = path
        self.line = line
        self.text = text

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.text.strip()}"


def iter_source_files(root, subdirs, exts=(".h", ".cc", ".cpp")):
    for sub in subdirs:
        base = os.path.join(root, sub)
        if not os.path.isdir(base):
            continue
        for dirpath, _, names in os.walk(base):
            for name in sorted(names):
                if name.endswith(exts):
                    yield os.path.join(dirpath, name)


def suppressed(line, rule):
    m = SUPPRESS_RE.search(line)
    return m is not None and rule in m.group(1).split(",")


def code_of(line):
    """The line with any trailing // comment stripped (string literals with
    '//' are rare enough in this codebase not to matter)."""
    return LINE_COMMENT_RE.sub("", line)


def check_naked_random(root):
    findings = []
    for path in iter_source_files(root, ("src", "tests", "bench", "examples")):
        rel = os.path.relpath(path, root)
        if rel.startswith(os.path.join("src", "util", "random")):
            continue
        with open(path, encoding="utf-8", errors="replace") as f:
            for i, line in enumerate(f, 1):
                if suppressed(line, "naked-random"):
                    continue
                if NAKED_RANDOM_RE.search(code_of(line)):
                    findings.append(Finding("naked-random", rel, i, line))
    return findings


def check_cout_in_src(root):
    findings = []
    for path in iter_source_files(root, ("src",)):
        rel = os.path.relpath(path, root)
        # util/logging IS the sanctioned sink; its implementation must
        # write somewhere real.
        if rel.startswith(os.path.join("src", "util", "logging")):
            continue
        with open(path, encoding="utf-8", errors="replace") as f:
            for i, line in enumerate(f, 1):
                if suppressed(line, "cout-in-src"):
                    continue
                if COUT_RE.search(code_of(line)):
                    findings.append(Finding("cout-in-src", rel, i, line))
    return findings


def check_raw_dimension(root):
    findings = []
    for path in iter_source_files(root, ("src",), exts=(".h",)):
        rel = os.path.relpath(path, root)
        with open(path, encoding="utf-8", errors="replace") as f:
            for i, line in enumerate(f, 1):
                if suppressed(line, "raw-dimension"):
                    continue
                if RAW_DIMENSION_RE.search(code_of(line)):
                    findings.append(Finding("raw-dimension", rel, i, line))
    return findings


def check_unregistered_tests(root):
    findings = []
    registered = set()
    for dirpath, _, names in os.walk(os.path.join(root, "tests")):
        for name in names:
            if name == "CMakeLists.txt":
                with open(os.path.join(dirpath, name), encoding="utf-8") as f:
                    registered.update(re.findall(r"[\w/]+_test\.cc", f.read()))
    for path in iter_source_files(root, ("tests",), exts=("_test.cc",)):
        rel = os.path.relpath(path, root)
        rel_in_tests = os.path.relpath(path, os.path.join(root, "tests"))
        if rel_in_tests not in registered and os.path.basename(path) not in (
            os.path.basename(r) for r in registered
        ):
            findings.append(
                Finding("unregistered-test", rel, 1,
                        "test file not registered in any tests/CMakeLists.txt")
            )
    return findings


def check_naked_sleep(root):
    findings = []
    for path in iter_source_files(root, ("src",)):
        rel = os.path.relpath(path, root)
        # util/retry IS the sanctioned sleep/retry implementation.
        if rel.startswith(os.path.join("src", "util", "retry")):
            continue
        with open(path, encoding="utf-8", errors="replace") as f:
            for i, line in enumerate(f, 1):
                if suppressed(line, "naked-sleep"):
                    continue
                code = code_of(line)
                if NAKED_SLEEP_RE.search(code) or RETRY_LOOP_RE.search(code):
                    findings.append(Finding("naked-sleep", rel, i, line))
    return findings


def check_read_path_mutex(root):
    findings = []
    for rel in READ_PATH_FILES:
        path = os.path.join(root, rel)
        if not os.path.isfile(path):
            continue
        with open(path, encoding="utf-8", errors="replace") as f:
            for i, line in enumerate(f, 1):
                # The writer-seam marker is the sanctioned opt-in; the
                # generic disable= suppression also works but the seam
                # marker is preferred (greppable as a single vocabulary).
                if WRITER_SEAM_RE.search(line):
                    continue
                if suppressed(line, "read-path-mutex"):
                    continue
                if READ_PATH_MUTEX_RE.search(code_of(line)):
                    findings.append(Finding("read-path-mutex", rel, i, line))
    return findings


CHECKS = {
    "naked-random": check_naked_random,
    "cout-in-src": check_cout_in_src,
    "raw-dimension": check_raw_dimension,
    "unregistered-test": check_unregistered_tests,
    "naked-sleep": check_naked_sleep,
    "read-path-mutex": check_read_path_mutex,
}


def lint(root):
    findings = []
    for check in CHECKS.values():
        findings.extend(check(root))
    return findings


def self_test():
    """Seeds one violation per rule into a scratch tree and verifies the
    linter reports each; also verifies the suppression comment works."""
    failures = []
    with tempfile.TemporaryDirectory(prefix="contender-lint-") as root:
        os.makedirs(os.path.join(root, "src", "core"))
        os.makedirs(os.path.join(root, "tests", "core"))

        def write(rel, text):
            path = os.path.join(root, rel)
            os.makedirs(os.path.dirname(path), exist_ok=True)
            with open(path, "w", encoding="utf-8") as f:
                f.write(text)

        write("src/core/bad_random.cc",
              "int Roll() { return rand() % 6; }\n"
              "std::random_device rd;\n")
        write("src/core/bad_print.cc",
              '#include <iostream>\nvoid P() { std::cout << "x"; }\n')
        write("src/core/bad_units.h",
              "void Predict(double spoiler_latency, double io_fraction);\n")
        # sched/ headers sit at the policy/oracle seam where raw doubles
        # are most tempting (scores, slacks); the rule must cover them too,
        # including defaulted parameters.
        write("src/sched/bad_sched.h",
              "void Admit(double predicted_latency = 0.0,\n"
              "           int slot);\n")
        # serve/ is the concurrent serving layer: wall-clock randomness
        # would break deterministic replay of ingest/refit sequences, and
        # observed latencies crossing its API must use units::Seconds.
        # Seed both violation kinds there to prove the walk reaches it.
        write("src/serve/bad_serve_random.cc",
              "std::random_device entropy;\n"
              "int Jitter() { return rand() % 3; }\n")
        write("src/serve/bad_serve.h",
              "void Ingest(double observed_latency,\n"
              "            double drift_fraction = 0.0);\n")
        # serve/ is also where wall-clock waits and hand-rolled retry
        # loops would silently break deterministic replay — seed both
        # naked-sleep violation kinds there.
        write("src/serve/bad_sleep.cc",
              "void Wait() {\n"
              "  std::this_thread::sleep_for(std::chrono::seconds(1));\n"
              "}\n"
              "void Retry() {\n"
              "  for (int attempt = 0; attempt < 3; ++attempt) {}\n"
              "  while (retries < kMax) { ++retries; }\n"
              "  usleep(100);\n"
              "}\n")
        # The sanctioned implementation must stay exempt.
        write("src/util/retry.cc",
              "void SystemClock::Sleep() {\n"
              "  std::this_thread::sleep_for(std::chrono::seconds(1));\n"
              "}\n")
        # The serving read path must stay lock-free: a naked lock in
        # service.cc fires, while the marked writer seam inside
        # snapshot_holder.cc (and lock vocabulary in comments) stays
        # exempt. sleep_for in these files is already covered by R5, so
        # keep the fixture to lock vocabulary only.
        write("src/serve/service.cc",
              "#include <mutex>\n"
              "std::mutex cache_mutex;\n"
              "void Predict() {\n"
              "  const std::lock_guard<std::mutex> lock(cache_mutex);\n"
              "}\n")
        write("src/serve/snapshot_holder.cc",
              "// a std::mutex mentioned in a comment is fine\n"
              "std::mutex writer_mutex_;  // contender-lint: writer-seam\n"
              "void Publish() {\n"
              "  const std::lock_guard<std::mutex> lock(writer_mutex_);"
              "  // contender-lint: writer-seam\n"
              "}\n")
        write("tests/core/orphan_test.cc", "// never registered\n")
        write("tests/CMakeLists.txt",
              "contender_test(other_test core/other_test.cc)\n")
        write("tests/core/other_test.cc", "// registered\n")
        # Suppressions and comment-only mentions must NOT fire.
        write("src/core/ok.cc",
              "// std::cout in a comment is fine\n"
              "int x = rand();  // contender-lint: disable=naked-random\n")

        found = {f.rule: [] for f in lint(root)}
        for f in lint(root):
            found.setdefault(f.rule, []).append(f)

        expect = {
            "naked-random": ["src/core/bad_random.cc",
                             "src/serve/bad_serve_random.cc"],
            "cout-in-src": ["src/core/bad_print.cc"],
            "raw-dimension": ["src/core/bad_units.h",
                              "src/sched/bad_sched.h",
                              "src/serve/bad_serve.h"],
            "unregistered-test": ["tests/core/orphan_test.cc"],
            "naked-sleep": ["src/serve/bad_sleep.cc"],
            "read-path-mutex": ["src/serve/service.cc"],
        }
        for rule, paths in expect.items():
            for path in paths:
                hits = [f for f in found.get(rule, []) if f.path == path]
                if not hits:
                    failures.append(
                        f"rule {rule} did not fire on seeded {path}")
        for f in sum(found.values(), []):
            if f.path == "src/core/ok.cc":
                failures.append(f"false positive on suppressed/comment: {f}")
            if f.path == "tests/core/other_test.cc":
                failures.append(f"false positive on registered test: {f}")
            if f.path == os.path.join("src", "util", "retry.cc"):
                failures.append(f"naked-sleep fired on exempt retry.cc: {f}")
            if (f.rule == "read-path-mutex"
                    and f.path == os.path.join("src", "serve",
                                               "snapshot_holder.cc")):
                failures.append(
                    f"read-path-mutex fired on marked writer seam: {f}")

    if failures:
        for msg in failures:
            print(f"lint --self-test FAILED: {msg}", file=sys.stderr)
        return 1
    print(f"lint --self-test passed: all {len(RULES)} rules fire and "
          "suppressions hold")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root",
                        default=os.path.dirname(os.path.dirname(
                            os.path.abspath(__file__))))
    parser.add_argument("--self-test", action="store_true")
    args = parser.parse_args()

    if args.self_test:
        return self_test()

    findings = lint(args.root)
    for f in findings:
        print(f)
    if findings:
        print(f"\nlint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print("lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())

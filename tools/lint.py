#!/usr/bin/env python3
"""Repo-specific lint rules for Contender.

Every rule lives in the RULES table below — one entry carries the rule's
name, its documentation, its check function, AND its --self-test fixtures
and expectations. The rule list printed by --help, the checks run by a
normal lint pass, and the coverage demanded by --self-test are all derived
from that single table, so a new rule cannot ship undocumented or
untested: --self-test fails outright if any rule lacks a seeded fixture
that makes it fire.

Usage:
  tools/lint.py [--root DIR]   lint the repository (non-zero exit on findings)
  tools/lint.py --self-test    seed violations into a temp tree and verify
                               every rule fires (non-zero exit on a miss)

Suppression: append `// contender-lint: disable=<rule>` to the offending
line. Suppressions are themselves budgeted: rule suppression-budget counts
every `disable=` comment, every `NO_THREAD_SAFETY_ANALYSIS`, and every
`// contender-lint: lock-free` marker against the SUPPRESSION_BUDGET
allowlist in this script — a new suppression without an allowlist entry
(and its one-line justification) fails lint.
"""

import argparse
import os
import re
import sys
import tempfile

NAKED_RANDOM_RE = re.compile(
    r"(?<![\w:])(?:std::)?rand\s*\(\s*\)|std::random_device")
COUT_RE = re.compile(r"std::c(?:out|err)\b")
# Parameters only: a parameter ends in `,` or `)` (possibly after a
# default value). Struct fields end in `;` and are exempt — measurement
# buffers and simulator knobs legitimately hold raw doubles.
RAW_DIMENSION_RE = re.compile(
    r"\bdouble\s+\w*(?:latency|fraction)\w*\s*(?:=[^,);]*)?[,)]")
NAKED_SLEEP_RE = re.compile(
    r"\bsleep_(?:for|until)\s*\(|(?<![\w:])(?:u|nano)sleep\s*\(")
# A for/while header spelled over a retry/attempt counter is an ad-hoc
# retry loop; the sanctioned loop lives in util/retry.cc.
RETRY_LOOP_RE = re.compile(
    r"\b(?:for|while)\s*\([^)]*\b(?:retry|retries|attempts?)\b")
SUPPRESS_RE = re.compile(r"//\s*contender-lint:\s*disable=([\w,-]+)")
LINE_COMMENT_RE = re.compile(r"//.*$")
# The serving read-path files that must stay free of blocking locks; the
# sole exception is the writer seam, marked line-by-line.
READ_PATH_FILES = (
    os.path.join("src", "serve", "service.h"),
    os.path.join("src", "serve", "service.cc"),
    os.path.join("src", "serve", "snapshot_holder.h"),
    os.path.join("src", "serve", "snapshot_holder.cc"),
)
# Blocking-lock vocabulary: the std primitives AND the repo's annotated
# wrappers (util/mutex.h) — a wrapper lock serializes readers exactly as
# hard as a raw one.
BLOCKING_LOCK_RE = re.compile(
    r"std::(?:mutex|timed_mutex|recursive_mutex|recursive_timed_mutex|"
    r"shared_mutex|shared_timed_mutex|lock_guard|unique_lock|shared_lock|"
    r"scoped_lock|condition_variable|condition_variable_any)\b"
    r"|\b(?:Mutex|MutexLock|CondVar)\b")
# The raw std::mutex family only (rule raw-lock pass 1): these must not
# appear anywhere in src/ outside util/mutex.h — every lock goes through
# the annotated wrappers so Clang TSA can check it.
RAW_LOCK_RE = re.compile(
    r"std::(?:mutex|timed_mutex|recursive_mutex|recursive_timed_mutex|"
    r"shared_mutex|shared_timed_mutex|lock_guard|unique_lock|shared_lock|"
    r"scoped_lock|condition_variable|condition_variable_any)\b"
    r"|#\s*include\s*<(?:mutex|condition_variable|shared_mutex)>")
WRITER_SEAM_RE = re.compile(r"//\s*contender-lint:\s*writer-seam")
LOCK_FREE_RE = re.compile(r"//\s*contender-lint:\s*lock-free")
NTSA_RE = re.compile(r"\bNO_THREAD_SAFETY_ANALYSIS\b")
# The one file allowed to touch the std primitives (it wraps them).
MUTEX_WRAPPER_FILE = os.path.join("src", "util", "mutex.h")
ANNOTATIONS_FILE = os.path.join("src", "util", "thread_annotations.h")

# Suppression budget (rule suppression-budget): every TSA/lint suppression
# in src/ must appear here with an exact expected count and a one-line
# justification. Adding a suppression without extending this table (and
# defending the entry in review) fails lint; a stale entry whose
# suppression disappeared fails too, so the table tracks reality.
# Kinds: a rule name (for `disable=<rule>` comments),
# "no-thread-safety-analysis" (NO_THREAD_SAFETY_ANALYSIS attributes), or
# "lock-free" (`// contender-lint: lock-free` guard-completeness markers).
SUPPRESSION_BUDGET = {
    os.path.join("src", "util", "thread_pool.cc"): {
        "no-thread-safety-analysis":
            (1, "WorkerLoop's Await predicate runs with mutex_ held; TSA "
                "cannot see through the template indirection"),
    },
    os.path.join("src", "serve", "refit_controller.cc"): {
        "no-thread-safety-analysis":
            (1, "background WaitFor predicate runs with background_mutex_ "
                "held; TSA cannot see through the template indirection"),
    },
    os.path.join("src", "util", "thread_pool.h"): {
        "lock-free":
            (1, "workers_ is written only by the constructor and joined "
                "after stopping_; workers never touch it"),
    },
    os.path.join("src", "util", "epoch.h"): {
        "lock-free":
            (1, "reader announcement slots are cache-padded atomics — the "
                "lock-free read side by design"),
    },
    os.path.join("src", "sched", "mix_oracle.h"): {
        "lock-free":
            (1, "shards_ vector is built in the constructor and immutable "
                "after; only guarded shard interiors mutate"),
    },
    os.path.join("src", "serve", "observation_log.h"): {
        "lock-free":
            (1, "shards_ vector is built in the constructor and immutable "
                "after; only guarded shard interiors mutate"),
    },
    os.path.join("src", "serve", "health.h"): {
        "lock-free":
            (1, "published_ is sized once and holds atomics written under "
                "mutex_, read lock-free by state()"),
    },
    os.path.join("src", "serve", "snapshot_holder.h"): {
        "lock-free":
            (2, "ref_ (seqlock) and epochs_ (epoch domain) ARE the "
                "lock-free read path (DESIGN.md §12)"),
    },
}


class Finding:
    def __init__(self, rule, path, line, text):
        self.rule = rule
        self.path = path
        self.line = line
        self.text = text

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.text.strip()}"


def iter_source_files(root, subdirs, exts=(".h", ".cc", ".cpp")):
    for sub in subdirs:
        base = os.path.join(root, sub)
        if not os.path.isdir(base):
            continue
        for dirpath, _, names in os.walk(base):
            for name in sorted(names):
                if name.endswith(exts):
                    yield os.path.join(dirpath, name)


def suppressed(line, rule):
    m = SUPPRESS_RE.search(line)
    return m is not None and rule in m.group(1).split(",")


def code_of(line):
    """The line with any trailing // comment stripped (string literals with
    '//' are rare enough in this codebase not to matter)."""
    return LINE_COMMENT_RE.sub("", line)


def read_lines(path):
    with open(path, encoding="utf-8", errors="replace") as f:
        return f.readlines()


def check_naked_random(root):
    findings = []
    for path in iter_source_files(root, ("src", "tests", "bench", "examples")):
        rel = os.path.relpath(path, root)
        if rel.startswith(os.path.join("src", "util", "random")):
            continue
        for i, line in enumerate(read_lines(path), 1):
            if suppressed(line, "naked-random"):
                continue
            if NAKED_RANDOM_RE.search(code_of(line)):
                findings.append(Finding("naked-random", rel, i, line))
    return findings


def check_cout_in_src(root):
    findings = []
    for path in iter_source_files(root, ("src",)):
        rel = os.path.relpath(path, root)
        # util/logging IS the sanctioned sink; its implementation must
        # write somewhere real.
        if rel.startswith(os.path.join("src", "util", "logging")):
            continue
        for i, line in enumerate(read_lines(path), 1):
            if suppressed(line, "cout-in-src"):
                continue
            if COUT_RE.search(code_of(line)):
                findings.append(Finding("cout-in-src", rel, i, line))
    return findings


def check_raw_dimension(root):
    findings = []
    for path in iter_source_files(root, ("src",), exts=(".h",)):
        rel = os.path.relpath(path, root)
        for i, line in enumerate(read_lines(path), 1):
            if suppressed(line, "raw-dimension"):
                continue
            if RAW_DIMENSION_RE.search(code_of(line)):
                findings.append(Finding("raw-dimension", rel, i, line))
    return findings


def check_unregistered_tests(root):
    findings = []
    registered = set()
    for dirpath, _, names in os.walk(os.path.join(root, "tests")):
        for name in names:
            if name == "CMakeLists.txt":
                with open(os.path.join(dirpath, name), encoding="utf-8") as f:
                    registered.update(re.findall(r"[\w/]+_test\.cc", f.read()))
    for path in iter_source_files(root, ("tests",), exts=("_test.cc",)):
        rel = os.path.relpath(path, root)
        rel_in_tests = os.path.relpath(path, os.path.join(root, "tests"))
        if rel_in_tests not in registered and os.path.basename(path) not in (
            os.path.basename(r) for r in registered
        ):
            findings.append(
                Finding("unregistered-test", rel, 1,
                        "test file not registered in any tests/CMakeLists.txt")
            )
    return findings


SCENARIO_CLASS_RE = re.compile(
    r"class\s+(\w+)\s*(?:final\s*)?:\s*public\s+(?:scenario::)?Scenario\b")
SCENARIO_REGISTER_RE = re.compile(r"CONTENDER_REGISTER_SCENARIO\(\s*(\w+)\s*\)")


def check_scenario_registered(root):
    findings = []
    registered = set()
    for path in iter_source_files(root, (os.path.join("src", "scenario"),),
                                  exts=(".cc",)):
        for line in read_lines(path):
            registered.update(SCENARIO_REGISTER_RE.findall(code_of(line)))
    for path in iter_source_files(root, (os.path.join("src", "scenario"),)):
        rel = os.path.relpath(path, root)
        for i, line in enumerate(read_lines(path), 1):
            if suppressed(line, "scenario-registered"):
                continue
            m = SCENARIO_CLASS_RE.search(code_of(line))
            if m and m.group(1) not in registered:
                findings.append(
                    Finding("scenario-registered", rel, i,
                            f"scenario class {m.group(1)} has no "
                            "CONTENDER_REGISTER_SCENARIO entry"))
    return findings


def check_naked_sleep(root):
    findings = []
    for path in iter_source_files(root, ("src",)):
        rel = os.path.relpath(path, root)
        # util/retry IS the sanctioned sleep/retry implementation.
        if rel.startswith(os.path.join("src", "util", "retry")):
            continue
        for i, line in enumerate(read_lines(path), 1):
            if suppressed(line, "naked-sleep"):
                continue
            code = code_of(line)
            if NAKED_SLEEP_RE.search(code) or RETRY_LOOP_RE.search(code):
                findings.append(Finding("naked-sleep", rel, i, line))
    return findings


def check_read_path_mutex(root):
    findings = []
    for rel in READ_PATH_FILES:
        path = os.path.join(root, rel)
        if not os.path.isfile(path):
            continue
        for i, line in enumerate(read_lines(path), 1):
            # The writer-seam marker is the sanctioned opt-in; the
            # generic disable= suppression also works but the seam
            # marker is preferred (greppable as a single vocabulary).
            if WRITER_SEAM_RE.search(line):
                continue
            if suppressed(line, "read-path-mutex"):
                continue
            if BLOCKING_LOCK_RE.search(code_of(line)):
                findings.append(Finding("read-path-mutex", rel, i, line))
    return findings


# ---------------------------------------------------------------------------
# raw-lock pass 2: guard completeness.

_CLASS_HEAD_RE = re.compile(r"\b(?<!enum\s)(?:class|struct)\b[^;{}]*\{")
_ATTR_RE = re.compile(
    r"\b(?:GUARDED_BY|PT_GUARDED_BY|ACQUIRED_BEFORE|ACQUIRED_AFTER|alignas)"
    r"\s*\([^()]*\)")
_GUARD_ATTR_RE = re.compile(r"\b(?:GUARDED_BY|PT_GUARDED_BY)\s*\(")
_ACCESS_LABEL_RE = re.compile(r"\b(?:public|private|protected)\s*:")
_SKIP_FIRST_TOKENS = ("using", "typedef", "friend", "static", "enum",
                      "class", "struct", "template")
# Types that synchronize themselves: a field of one of these needs no
# GUARDED_BY (the wrappers/atomics/lock-free primitives carry their own
# contracts).
_SELF_SYNC_RE = re.compile(
    r"\b(?:std::atomic|ShardedCounter|CachePadded|Seqlock|EpochDomain|"
    r"Mutex|CondVar)\b")
_OWNS_MUTEX_RE = re.compile(r"\bMutex\s+\w+")
_TEMPLATE_ARGS_RE = re.compile(r"<[^<>]*>")


def _strip_comments_and_strings(lines):
    """Comment/string-stripped copies of `lines` (same line count)."""
    out = []
    in_block = False
    for line in lines:
        result = []
        i = 0
        while i < len(line):
            if in_block:
                end = line.find("*/", i)
                if end < 0:
                    i = len(line)
                else:
                    in_block = False
                    i = end + 2
                continue
            ch = line[i]
            if ch == '"':
                j = i + 1
                while j < len(line) and line[j] != '"':
                    j += 2 if line[j] == "\\" else 1
                i = j + 1
                continue
            if line.startswith("//", i):
                break
            if line.startswith("/*", i):
                in_block = True
                i += 2
                continue
            result.append(ch)
            i += 1
        out.append("".join(result))
    return out


def _class_bodies(cleaned_lines):
    """Yields (immediate_chunks,) for every class/struct body, where
    immediate_chunks is a list of (line_no, char) covering only the body's
    own depth (nested braces elided to their delimiters)."""
    chars = []
    for line_no, line in enumerate(cleaned_lines, 1):
        for ch in line:
            chars.append((line_no, ch))
        chars.append((line_no, "\n"))
    text = "".join(ch for _, ch in chars)
    for m in _CLASS_HEAD_RE.finditer(text):
        open_idx = m.end() - 1
        depth = 0
        close_idx = None
        for j in range(open_idx, len(text)):
            if text[j] == "{":
                depth += 1
            elif text[j] == "}":
                depth -= 1
                if depth == 0:
                    close_idx = j
                    break
        if close_idx is None:
            continue
        depth = 0
        immediate = []
        for j in range(open_idx + 1, close_idx):
            ch = text[j]
            if ch == "{":
                depth += 1
                immediate.append((chars[j][0], "{"))
            elif ch == "}":
                depth -= 1
                immediate.append((chars[j][0], "}"))
            elif depth == 0:
                immediate.append((chars[j][0], ch))
        yield immediate


def _statements(immediate):
    """Splits a class body's immediate chunks into `;`-terminated
    statements, each a (first_line, last_line, text) tuple."""
    statements = []
    current = []
    for line_no, ch in immediate:
        current.append((line_no, ch))
        if ch == ";":
            text = "".join(c for _, c in current)
            statements.append((current[0][0], current[-1][0], text))
            current = []
    return statements


def _guard_completeness(rel, raw_lines, findings):
    """raw-lock pass 2: inside any class that owns a Mutex, every mutable
    field must be GUARDED_BY a capability, a self-synchronizing type, or
    explicitly marked `// contender-lint: lock-free`."""
    cleaned = _strip_comments_and_strings(raw_lines)
    for immediate in _class_bodies(cleaned):
        statements = _statements(immediate)
        if not any(_OWNS_MUTEX_RE.search(text) for _, _, text in statements):
            continue
        for first, last, text in statements:
            stmt = _ACCESS_LABEL_RE.sub(" ", text)
            stmt = " ".join(stmt.split())
            if not stmt or stmt in (";",):
                continue
            had_guard = _GUARD_ATTR_RE.search(stmt) is not None
            stmt_no_attrs = _ATTR_RE.sub(" ", stmt)
            first_token = stmt_no_attrs.split()[0] if stmt_no_attrs.split() \
                else ""
            first_token = first_token.split("<")[0]
            if first_token in _SKIP_FIRST_TOKENS:
                continue
            if "(" in stmt_no_attrs:
                continue  # function/constructor declaration
            if had_guard:
                continue
            if _SELF_SYNC_RE.search(stmt_no_attrs):
                continue
            lines_of_stmt = raw_lines[first - 1:last]
            if any(LOCK_FREE_RE.search(l) for l in lines_of_stmt):
                continue
            if any(suppressed(l, "raw-lock") for l in lines_of_stmt):
                continue
            no_templates = stmt_no_attrs
            while _TEMPLATE_ARGS_RE.search(no_templates):
                no_templates = _TEMPLATE_ARGS_RE.sub(" ", no_templates)
            if re.search(r"\bconst\b", no_templates):
                continue
            findings.append(Finding(
                "raw-lock", rel, first,
                f"mutable field in a Mutex-owning class lacks GUARDED_BY, "
                f"a self-synchronizing type, or a "
                f"`// contender-lint: lock-free` marker: {stmt}"))


def check_raw_lock(root):
    findings = []
    for path in iter_source_files(root, ("src",)):
        rel = os.path.relpath(path, root)
        if rel == MUTEX_WRAPPER_FILE:
            continue  # the wrapper itself is the sanctioned use
        raw_lines = read_lines(path)
        # Pass 1: no raw std::mutex-family vocabulary anywhere in src/.
        for i, line in enumerate(raw_lines, 1):
            if suppressed(line, "raw-lock"):
                continue
            if RAW_LOCK_RE.search(code_of(line)):
                findings.append(Finding("raw-lock", rel, i, line))
        # Pass 2: guard completeness (headers carry the declarations).
        if rel.endswith(".h") and rel != ANNOTATIONS_FILE:
            _guard_completeness(rel, raw_lines, findings)
    return findings


# A drop flag being raised: the outcome fields the schedulers/router use
# to mark work they refused (`rejected`/`shed`). Anything that raises one
# must stamp WHY within the surrounding lines, or the drop is silent.
SHED_FLAG_RE = re.compile(r"\b(?:rejected|shed)\s*=\s*true\b")
SHED_REASON_NEARBY_RE = re.compile(r"\bShedReason\b|\bshed_reason\b")


def check_shed_reason(root):
    """Every `rejected = true` / `shed = true` in src/ must mention
    ShedReason/shed_reason within +/-3 lines — no silent drops."""
    findings = []
    for path in iter_source_files(root, ("src",)):
        rel = os.path.relpath(path, root)
        lines = read_lines(path)
        for i, line in enumerate(lines, 1):
            if suppressed(line, "shed-reason"):
                continue
            if not SHED_FLAG_RE.search(code_of(line)):
                continue
            window = lines[max(0, i - 4):i + 3]
            if any(SHED_REASON_NEARBY_RE.search(w) for w in window):
                continue
            findings.append(Finding(
                "shed-reason", rel, i,
                "drop flag raised without a ShedReason stamp within 3 "
                "lines — every rejected/shed request must say why "
                f"(DESIGN.md §16): {line.strip()}"))
    return findings


def check_suppression_budget(root, budget=None):
    """Counts every suppression vocabulary occurrence in src/ against the
    allowlist: unbudgeted suppressions fail, and so do stale allowlist
    entries whose suppressions no longer exist."""
    if budget is None:
        budget = SUPPRESSION_BUDGET
    findings = []
    counts = {}  # (rel, kind) -> [count, first_line]
    for path in iter_source_files(root, ("src",)):
        rel = os.path.relpath(path, root)
        if rel == ANNOTATIONS_FILE:
            continue  # defines NO_THREAD_SAFETY_ANALYSIS
        for i, line in enumerate(read_lines(path), 1):
            for m in SUPPRESS_RE.finditer(line):
                for rule in m.group(1).split(","):
                    key = (rel, rule)
                    counts.setdefault(key, [0, i])[0] += 1
            if NTSA_RE.search(code_of(line)):
                key = (rel, "no-thread-safety-analysis")
                counts.setdefault(key, [0, i])[0] += 1
            if LOCK_FREE_RE.search(line):
                key = (rel, "lock-free")
                counts.setdefault(key, [0, i])[0] += 1
    for (rel, kind), (count, first_line) in sorted(counts.items()):
        allowed = budget.get(rel, {}).get(kind)
        if allowed is None:
            findings.append(Finding(
                "suppression-budget", rel, first_line,
                f"suppression `{kind}` (x{count}) has no SUPPRESSION_BUDGET "
                f"allowlist entry in tools/lint.py — add one with a "
                f"justification or remove the suppression"))
        elif count > allowed[0]:
            findings.append(Finding(
                "suppression-budget", rel, first_line,
                f"suppression `{kind}` appears {count}x, over its budget of "
                f"{allowed[0]} — extend the allowlist entry or remove the "
                f"new suppression"))
    for rel, kinds in sorted(budget.items()):
        for kind, (allowed, _) in sorted(kinds.items()):
            if allowed > 0 and (rel, kind) not in counts:
                if os.path.isfile(os.path.join(root, rel)) or \
                        not os.path.isdir(os.path.join(root, "src")):
                    findings.append(Finding(
                        "suppression-budget", rel, 1,
                        f"stale allowlist entry: no `{kind}` suppression "
                        f"remains in this file — delete the entry"))
    return findings


# ---------------------------------------------------------------------------
# The rule table: the single source of truth for documentation, checks,
# and self-test coverage. Each entry:
#   name        rule id (used in disable= suppressions)
#   doc         what the rule enforces and why
#   check       callable(root) -> [Finding]
#   fixtures    {relpath: content} seeded into the self-test tree
#   expect_fire paths the rule MUST report
#   expect_quiet paths the rule MUST NOT report
#   self_test_kwargs extra kwargs for the check under --self-test

class Rule:
    def __init__(self, name, doc, check, fixtures, expect_fire, expect_quiet,
                 self_test_kwargs=None):
        self.name = name
        self.doc = doc
        self.check = check
        self.fixtures = fixtures
        self.expect_fire = expect_fire
        self.expect_quiet = expect_quiet
        self.self_test_kwargs = self_test_kwargs or {}


RULES = (
    Rule(
        "naked-random",
        "No rand()/std::random_device outside src/util/random.*. All "
        "stochastic behavior must flow through util/random's seeded Rng so "
        "simulations stay reproducible.",
        check_naked_random,
        {
            "src/core/bad_random.cc":
                "int Roll() { return rand() % 6; }\n"
                "std::random_device rd;\n",
            # serve/ is the concurrent serving layer: wall-clock randomness
            # would break deterministic replay of ingest/refit sequences.
            "src/serve/bad_serve_random.cc":
                "std::random_device entropy;\n"
                "int Jitter() { return rand() % 3; }\n",
            # fleet/ routing and chaos drains must replay bit-exactly from
            # one root seed: every draw goes through the derived Rng
            # streams, never ambient entropy.
            "src/fleet/bad_fleet_random.cc":
                "std::random_device node_entropy;\n"
                "int PickVictim() { return rand() % 4; }\n",
            # Suppressions and comment-only mentions must NOT fire.
            "src/core/ok.cc":
                "// std::cout in a comment is fine\n"
                "int x = rand();  // contender-lint: disable=naked-random\n",
        },
        ["src/core/bad_random.cc", "src/serve/bad_serve_random.cc",
         "src/fleet/bad_fleet_random.cc"],
        ["src/core/ok.cc"],
    ),
    Rule(
        "cout-in-src",
        "No std::cout/std::cerr in src/ (library code must use util/logging "
        "or take an ostream&). bench/, examples/ and tests/ are CLIs and "
        "may print.",
        check_cout_in_src,
        {
            "src/core/bad_print.cc":
                '#include <iostream>\nvoid P() { std::cout << "x"; }\n',
        },
        ["src/core/bad_print.cc"],
        ["src/core/ok.cc"],
    ),
    Rule(
        "raw-dimension",
        "No raw `double` parameter whose name contains `latency` or "
        "`fraction` in a public header under src/. Those quantities have "
        "dedicated types in util/units.h.",
        check_raw_dimension,
        {
            "src/core/bad_units.h":
                "void Predict(double spoiler_latency, double io_fraction);\n",
            # sched/ headers sit at the policy/oracle seam where raw
            # doubles are most tempting (scores, slacks); the rule must
            # cover them too, including defaulted parameters.
            "src/sched/bad_sched.h":
                "void Admit(double predicted_latency = 0.0,\n"
                "           int slot);\n",
            "src/serve/bad_serve.h":
                "void Ingest(double observed_latency,\n"
                "            double drift_fraction = 0.0);\n",
            # fleet/ headers trade in predicted latencies constantly (router
            # scores, blame shares); raw doubles there would let node and
            # fleet clocks drift apart silently.
            "src/fleet/bad_fleet.h":
                "void Score(double predicted_latency,\n"
                "           double blame_fraction = 0.0);\n",
        },
        ["src/core/bad_units.h", "src/sched/bad_sched.h",
         "src/serve/bad_serve.h", "src/fleet/bad_fleet.h"],
        [],
    ),
    Rule(
        "unregistered-test",
        "Every tests/**/*_test.cc must be registered in a CMakeLists.txt, "
        "or it silently never runs.",
        check_unregistered_tests,
        {
            "tests/core/orphan_test.cc": "// never registered\n",
            "tests/CMakeLists.txt":
                "contender_test(other_test core/other_test.cc)\n",
            "tests/core/other_test.cc": "// registered\n",
        },
        ["tests/core/orphan_test.cc"],
        ["tests/core/other_test.cc"],
    ),
    Rule(
        "scenario-registered",
        "Every `class X : public Scenario` under src/scenario/ must have a "
        "CONTENDER_REGISTER_SCENARIO(X) entry in a src/scenario .cc, or "
        "the scenario silently never appears in the registry (benches, "
        "fleet_demo --scenario and the registry round-trip tests all "
        "enumerate through it).",
        check_scenario_registered,
        {
            "src/scenario/bad_scenario.h":
                "class GhostScenario : public Scenario {\n"
                " public:\n"
                "  const char* name() const override { return \"ghost\"; }\n"
                "};\n",
            "src/scenario/good_scenario.h":
                "class SteadyScenario final : public scenario::Scenario {\n"
                " public:\n"
                "  const char* name() const override "
                "{ return \"steady\"; }\n"
                "};\n",
            "src/scenario/good_scenario.cc":
                "CONTENDER_REGISTER_SCENARIO(SteadyScenario)\n",
            # A deliberately unregistered helper base stays quiet only via
            # an explicit suppression.
            "src/scenario/suppressed_scenario.h":
                "class TestOnlyScenario : public Scenario {"
                "  // contender-lint: disable=scenario-registered\n"
                "};\n",
        },
        ["src/scenario/bad_scenario.h"],
        ["src/scenario/good_scenario.h",
         "src/scenario/suppressed_scenario.h"],
    ),
    Rule(
        "naked-sleep",
        "No sleep_for/sleep_until/usleep/nanosleep and no ad-hoc retry "
        "loops (a for/while spelled over retry/attempt counters) in src/ "
        "outside src/util/retry.*. Library code that waits or retries must "
        "go through util/retry's Clock and RetryWithBackoff so deadlines "
        "are budgeted, backoff is seeded-deterministic, and tests can "
        "inject a FakeClock. bench/ and tests/ drive wall-clock scenarios "
        "and are exempt.",
        check_naked_sleep,
        {
            "src/serve/bad_sleep.cc":
                "void Wait() {\n"
                "  std::this_thread::sleep_for(std::chrono::seconds(1));\n"
                "}\n"
                "void Retry() {\n"
                "  for (int attempt = 0; attempt < 3; ++attempt) {}\n"
                "  while (retries < kMax) { ++retries; }\n"
                "  usleep(100);\n"
                "}\n",
            # The sanctioned implementation must stay exempt.
            "src/util/retry.cc":
                "void SystemClock::Sleep() {\n"
                "  std::this_thread::sleep_for(std::chrono::seconds(1));\n"
                "}\n",
        },
        ["src/serve/bad_sleep.cc"],
        ["src/util/retry.cc"],
    ),
    Rule(
        "read-path-mutex",
        "No blocking-lock vocabulary — the std::mutex family OR the "
        "annotated Mutex/MutexLock/CondVar wrappers — in the serving "
        "read-path files (src/serve/service.* and "
        "src/serve/snapshot_holder.*). The read path is lock-free by "
        "design (DESIGN.md §12): readers go seqlock + epoch guard, and the "
        "ONLY sanctioned lock is the writer seam inside "
        "SnapshotHolder::Publish / shared(), whose lines carry the "
        "explicit `// contender-lint: writer-seam` marker. A new lock "
        "anywhere else reintroduces reader serialization.",
        check_read_path_mutex,
        {
            # A naked lock in service.cc fires — wrapper vocabulary too.
            "src/serve/service.cc":
                '#include "util/mutex.h"\n'
                "Mutex cache_mutex;\n"
                "void Predict() {\n"
                "  const MutexLock lock(&cache_mutex);\n"
                "}\n",
            # The marked writer seam (and lock vocabulary in comments)
            # stays exempt.
            "src/serve/snapshot_holder.cc":
                "// a std::mutex mentioned in a comment is fine\n"
                "Mutex writer_mutex_;  // contender-lint: writer-seam\n"
                "void Publish() {\n"
                "  const MutexLock lock(&writer_mutex_);"
                "  // contender-lint: writer-seam\n"
                "}\n",
        },
        ["src/serve/service.cc"],
        ["src/serve/snapshot_holder.cc"],
    ),
    Rule(
        "raw-lock",
        "Pass 1: no raw std::mutex/std::lock_guard/std::unique_lock/"
        "std::condition_variable (or any std blocking-lock vocabulary, "
        "including their #includes) anywhere in src/ outside "
        "src/util/mutex.h — every lock goes through the annotated "
        "Mutex/MutexLock/CondVar wrappers so Clang Thread Safety Analysis "
        "(-Wthread-safety, the clang-tsa CI job) can prove guard coverage "
        "and lock ordering. Pass 2 (guard completeness): inside any class "
        "that owns a Mutex, every mutable field must carry GUARDED_BY/"
        "PT_GUARDED_BY, be a self-synchronizing type (std::atomic, "
        "ShardedCounter, CachePadded, Seqlock, EpochDomain, Mutex, "
        "CondVar), be const, or carry an explicit `// contender-lint: "
        "lock-free` marker (budgeted by suppression-budget).",
        check_raw_lock,
        {
            "src/core/bad_lock.cc":
                "#include <mutex>\n"
                "std::mutex m;\n"
                "void F() { std::lock_guard<std::mutex> lock(m); }\n",
            # The wrapper itself is the one sanctioned user of the raw
            # primitives.
            "src/util/mutex.h":
                "#include <mutex>\n"
                "class Mutex { std::mutex mu_; };\n",
            # Guard completeness: an unguarded mutable field in a
            # Mutex-owning class fires ...
            "src/core/bad_guard.h":
                "class Leaky {\n"
                " private:\n"
                "  Mutex mutex_;\n"
                "  int unguarded_count_ = 0;\n"
                "};\n",
            # ... while all three sanctioned outcomes stay quiet:
            # GUARDED_BY, a self-synchronizing (atomic) type, and the
            # explicit lock-free marker — plus const immutables.
            "src/core/good_guard.h":
                "class Disciplined {\n"
                " private:\n"
                "  mutable Mutex mutex_;\n"
                "  long guarded_value_ GUARDED_BY(mutex_) = 0;\n"
                "  std::atomic<int> atomic_value_{0};\n"
                "  std::vector<int> frozen_after_ctor_;"
                "  // contender-lint: lock-free\n"
                "  const int immutable_ = 2;\n"
                "  void Tick() REQUIRES(mutex_);\n"
                "};\n",
            # fleet/ nodes share nothing mutable by design (the execution
            # pass is embarrassingly parallel); a raw lock or an unguarded
            # Mutex-owning registry there is exactly the drift this rule
            # exists to stop.
            "src/fleet/bad_fleet_lock.h":
                "#include <mutex>\n"
                "class NodeRegistry {\n"
                " private:\n"
                "  Mutex mutex_;\n"
                "  int outstanding_ = 0;\n"
                "};\n",
            "src/fleet/good_fleet_lock.h":
                "class NodeStats {\n"
                " private:\n"
                "  mutable Mutex mutex_;\n"
                "  int routed_ GUARDED_BY(mutex_) = 0;\n"
                "  const int node_id_ = 0;\n"
                "};\n",
        },
        ["src/core/bad_lock.cc", "src/core/bad_guard.h",
         "src/fleet/bad_fleet_lock.h"],
        ["src/util/mutex.h", "src/core/good_guard.h",
         "src/fleet/good_fleet_lock.h"],
    ),
    Rule(
        "shed-reason",
        "No silent drops: every `rejected = true` / `shed = true` in src/ "
        "must mention ShedReason/shed_reason within 3 lines, so every "
        "refused request carries a machine-readable reason the FleetMetrics "
        "conservation ledger can account for (DESIGN.md §16). A drop "
        "without a reason is invisible to the per-tenant shed breakdown "
        "and to the overload bench's shed-by-reason columns.",
        check_shed_reason,
        {
            # A raised drop flag with no reason in sight fires ...
            "src/fleet/bad_shed.cc":
                "void Drop(FleetQueryOutcome* out) {\n"
                "  out->rejected = true;\n"
                "}\n"
                "void LongDrop(Outcome* out) {\n"
                "  out->shed = true;\n"
                "  out->a = 1;\n"
                "  out->b = 2;\n"
                "  out->c = 3;\n"
                "  out->shed_reason = overload::ShedReason::kQuota;"
                "  // too far: 4 lines away\n"
                "}\n",
            # ... while a stamped drop (the router/simulator idiom) and an
            # explicitly suppressed one stay quiet.
            "src/fleet/good_shed.cc":
                "void Drop(FleetQueryOutcome* out) {\n"
                "  out->rejected = true;\n"
                "  out->shed_reason = overload::ShedReason::kQuota;\n"
                "}\n",
            "src/sched/good_shed.cc":
                "void Shed(Outcome* out, overload::ShedReason reason) {\n"
                "  out->shed_reason = reason;\n"
                "  out->shed = true;\n"
                "}\n"
                "void Legacy(Outcome* out) {\n"
                "  out->rejected = true;"
                "  // contender-lint: disable=shed-reason\n"
                "}\n",
        },
        ["src/fleet/bad_shed.cc"],
        ["src/fleet/good_shed.cc", "src/sched/good_shed.cc"],
    ),
    Rule(
        "suppression-budget",
        "Every suppression in src/ — `// contender-lint: disable=<rule>`, "
        "`NO_THREAD_SAFETY_ANALYSIS`, and `// contender-lint: lock-free` "
        "markers — is counted against the SUPPRESSION_BUDGET allowlist at "
        "the top of this script. A new suppression without an allowlist "
        "entry (with its one-line justification) fails lint; so does a "
        "stale entry whose suppression no longer exists.",
        check_suppression_budget,
        {
            # An unbudgeted disable= and an unbudgeted
            # NO_THREAD_SAFETY_ANALYSIS both fire ...
            "src/core/bad_suppress.cc":
                "int y = 0;  // contender-lint: disable=cout-in-src\n",
            "src/core/bad_ntsa.cc":
                "void Sneaky() NO_THREAD_SAFETY_ANALYSIS {}\n",
            # ... while budgeted ones (see self_test_kwargs) stay quiet.
            "src/core/ok_ntsa.cc":
                "void Budgeted() NO_THREAD_SAFETY_ANALYSIS {}\n",
        },
        ["src/core/bad_suppress.cc", "src/core/bad_ntsa.cc"],
        ["src/core/ok.cc", "src/core/ok_ntsa.cc", "src/core/good_guard.h"],
        self_test_kwargs={"budget": {
            os.path.join("src", "core", "ok.cc"):
                {"naked-random": (1, "self-test fixture")},
            os.path.join("src", "sched", "good_shed.cc"):
                {"shed-reason": (1, "self-test fixture")},
            os.path.join("src", "core", "ok_ntsa.cc"):
                {"no-thread-safety-analysis": (1, "self-test fixture")},
            os.path.join("src", "core", "good_guard.h"):
                {"lock-free": (1, "self-test fixture")},
        }},
    ),
)


def lint(root):
    findings = []
    for rule in RULES:
        findings.extend(rule.check(root))
    return findings


def self_test():
    """Seeds each rule's fixtures into a scratch tree and verifies the rule
    fires exactly where its table entry says — failing outright if any rule
    has no fixture or no expected firing path (coverage cannot silently
    lapse when a rule is added)."""
    failures = []
    for rule in RULES:
        if not rule.fixtures or not rule.expect_fire:
            failures.append(
                f"rule {rule.name} has no self-test fixture/expectation in "
                f"the RULES table — every rule must seed a violation")
    with tempfile.TemporaryDirectory(prefix="contender-lint-") as root:
        # One shared tree: fixtures may interact (e.g. suppression-budget
        # sees every other rule's suppressions), which mirrors reality.
        for rule in RULES:
            for rel, text in rule.fixtures.items():
                path = os.path.join(root, rel)
                os.makedirs(os.path.dirname(path), exist_ok=True)
                with open(path, "w", encoding="utf-8") as f:
                    f.write(text)
        for rule in RULES:
            findings = rule.check(root, **rule.self_test_kwargs)
            fired_paths = {f.path.replace(os.sep, "/") for f in findings}
            wrong_rule = [f for f in findings if f.rule != rule.name]
            if wrong_rule:
                failures.append(
                    f"check for {rule.name} reported a different rule id: "
                    f"{wrong_rule[0]}")
            for rel in rule.expect_fire:
                if rel not in fired_paths:
                    failures.append(
                        f"rule {rule.name} did not fire on seeded {rel}")
            for rel in rule.expect_quiet:
                if rel in fired_paths:
                    hit = next(f for f in findings
                               if f.path.replace(os.sep, "/") == rel)
                    failures.append(
                        f"rule {rule.name} false positive on {rel}: {hit}")
    if failures:
        for msg in failures:
            print(f"lint --self-test FAILED: {msg}", file=sys.stderr)
        return 1
    print(f"lint --self-test passed: all {len(RULES)} rules fire and "
          "suppressions hold")
    return 0


def rules_epilog():
    lines = ["rules:"]
    for rule in RULES:
        lines.append(f"  {rule.name}")
        doc = rule.doc
        while doc:
            lines.append(f"      {doc[:68].strip()}")
            doc = doc[68:]
    return "\n".join(lines)


def main():
    parser = argparse.ArgumentParser(
        description=__doc__, epilog=rules_epilog(),
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--root",
                        default=os.path.dirname(os.path.dirname(
                            os.path.abspath(__file__))))
    parser.add_argument("--self-test", action="store_true")
    args = parser.parse_args()

    if args.self_test:
        return self_test()

    findings = lint(args.root)
    for f in findings:
        print(f)
    if findings:
        print(f"\nlint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print("lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
